"""Unit tests for the multi-dimensional HN transform (paper §VI)."""

import numpy as np
import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy
from repro.data.schema import Schema
from repro.errors import SchemaError, TransformError
from repro.transforms.base import IdentityTransform
from repro.transforms.haar import HaarTransform
from repro.transforms.multidim import (
    HNTransform,
    apply_along_axis,
    transform_for_attribute,
    weight_tensor,
)
from repro.transforms.nominal import NominalTransform


class TestFigure4:
    """The paper's worked 2-D example (Figure 4 / Example 4)."""

    def test_step_matrices(self):
        # Transform along axis 1 first to follow the paper's narration
        # (vectors <v11, v12>, <v21, v22> are the rows).
        M = np.array([[8.0, 4.0], [1.0, 5.0]])
        transform = HaarTransform(2)
        C1 = apply_along_axis(transform, M, 1)
        np.testing.assert_allclose(C1, [[6.0, 2.0], [3.0, -2.0]])
        C2 = apply_along_axis(transform, C1, 0)
        np.testing.assert_allclose(C2, [[4.5, 0.0], [1.5, 2.0]])

    def test_axis_order_commutes(self):
        """Standard decomposition: the final matrix is order-independent."""
        M = np.array([[8.0, 4.0], [1.0, 5.0]])
        transform = HaarTransform(2)
        rows_first = apply_along_axis(
            transform, apply_along_axis(transform, M, 1), 0
        )
        cols_first = apply_along_axis(
            transform, apply_along_axis(transform, M, 0), 1
        )
        np.testing.assert_allclose(rows_first, cols_first)

    def test_hn_class_matches(self):
        schema = Schema([OrdinalAttribute("r", 2), OrdinalAttribute("c", 2)])
        hn = HNTransform(schema)
        C = hn.forward(np.array([[8.0, 4.0], [1.0, 5.0]]))
        np.testing.assert_allclose(C, [[4.5, 0.0], [1.5, 2.0]])

    def test_example5_weight_product(self):
        """W_HN(c11) is the product of the two per-axis base weights.

        Note: the paper's Example 5 text quotes reciprocal values (1/2,
        1/4) relative to its own §IV-B definition (W_Haar(base) = m); the
        definitional convention — which Lemma 2's sensitivity accounting
        requires — gives 2 * 2 = 4.  The *noise magnitude* lambda/W is
        identical under both statements.
        """
        schema = Schema([OrdinalAttribute("r", 2), OrdinalAttribute("c", 2)])
        hn = HNTransform(schema)
        assert hn.weight_of((0, 0)) == 4.0


def mixed_hn(mixed_schema):
    return HNTransform(mixed_schema)


class TestRoundTrip:
    def test_mixed_schema(self, mixed_schema, rng):
        hn = HNTransform(mixed_schema)
        M = rng.normal(size=mixed_schema.shape)
        np.testing.assert_allclose(hn.inverse(hn.forward(M)), M, atol=1e-9)

    def test_output_shape(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        # X: 5 -> padded 8; G: 6 leaves -> 9 nodes; Y: 4 -> 4
        assert hn.input_shape == (5, 6, 4)
        assert hn.output_shape == (8, 9, 4)

    def test_round_trip_with_sa(self, mixed_schema, rng):
        hn = HNTransform(mixed_schema, sa_names=("X",))
        M = rng.normal(size=mixed_schema.shape)
        np.testing.assert_allclose(hn.inverse(hn.forward(M)), M, atol=1e-9)
        assert hn.output_shape == (5, 9, 4)

    def test_all_sa_is_identity(self, mixed_schema, rng):
        hn = HNTransform(mixed_schema, sa_names=("X", "G", "Y"))
        M = rng.normal(size=mixed_schema.shape)
        np.testing.assert_allclose(hn.forward(M), M)

    def test_refine_false_still_inverts_exact(self, mixed_schema, rng):
        hn = HNTransform(mixed_schema)
        M = rng.normal(size=mixed_schema.shape)
        np.testing.assert_allclose(hn.inverse(hn.forward(M), refine=False), M, atol=1e-9)

    def test_linearity_proposition1(self, mixed_schema, rng):
        """Proposition 1: the HN transform is linear."""
        hn = HNTransform(mixed_schema)
        A = rng.normal(size=mixed_schema.shape)
        B = rng.normal(size=mixed_schema.shape)
        np.testing.assert_allclose(
            hn.forward(A + B), hn.forward(A) + hn.forward(B), atol=1e-9
        )

    def test_shape_validation(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        with pytest.raises(TransformError):
            hn.forward(np.zeros((5, 6, 5)))
        with pytest.raises(TransformError):
            hn.inverse(np.zeros((5, 6, 4)))


class TestTransformSelection:
    def test_for_ordinal(self):
        assert isinstance(transform_for_attribute(OrdinalAttribute("A", 5)), HaarTransform)

    def test_for_nominal(self):
        attr = NominalAttribute("B", flat_hierarchy(4))
        assert isinstance(transform_for_attribute(attr), NominalTransform)

    def test_sa_uses_identity(self, mixed_schema):
        hn = HNTransform(mixed_schema, sa_names=("G",))
        assert isinstance(hn.transforms[1], IdentityTransform)

    def test_unknown_sa_name(self, mixed_schema):
        with pytest.raises(SchemaError):
            HNTransform(mixed_schema, sa_names=("Nope",))

    def test_duplicate_sa_name(self, mixed_schema):
        with pytest.raises(TransformError):
            HNTransform(mixed_schema, sa_names=("X", "X"))


class TestWeights:
    def test_weight_tensor_outer_product(self):
        w = weight_tensor([np.array([1.0, 2.0]), np.array([3.0, 4.0, 5.0])])
        np.testing.assert_allclose(w, [[3, 4, 5], [6, 8, 10]])

    def test_weight_of_matches_tensor(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        tensor = weight_tensor(hn.weight_vectors())
        assert tensor.shape == hn.output_shape
        assert hn.weight_of((0, 0, 0)) == pytest.approx(tensor[0, 0, 0])
        assert hn.weight_of((3, 5, 2)) == pytest.approx(tensor[3, 5, 2])

    def test_weight_of_arity_check(self, mixed_schema):
        with pytest.raises(TransformError):
            HNTransform(mixed_schema).weight_of((0, 0))

    def test_sa_axis_has_unit_weights(self, mixed_schema):
        hn = HNTransform(mixed_schema, sa_names=("X",))
        np.testing.assert_array_equal(hn.weight_vectors()[0], np.ones(5))


class TestFactors:
    def test_generalized_sensitivity_product(self, mixed_schema):
        """Theorem 2: rho = P(X) * P(G) * P(Y) = 4 * 3 * 3 = 36."""
        hn = HNTransform(mixed_schema)
        assert hn.generalized_sensitivity() == pytest.approx(4.0 * 3.0 * 3.0)

    def test_variance_factor_product(self, mixed_schema):
        """Theorem 3: H(X) * H(G) * H(Y) = 2.5 * 4 * 2 = 20."""
        hn = HNTransform(mixed_schema)
        assert hn.variance_bound_factor() == pytest.approx(2.5 * 4.0 * 2.0)

    def test_sa_changes_factors(self, mixed_schema):
        """Corollary 1: SA axes contribute 1 to rho and |A| to variance."""
        hn = HNTransform(mixed_schema, sa_names=("X",))
        assert hn.generalized_sensitivity() == pytest.approx(3.0 * 3.0)
        assert hn.variance_bound_factor() == pytest.approx(5.0 * 4.0 * 2.0)

    def test_theorem2_empirical(self, mixed_schema):
        """The closed-form rho is exactly the measured worst case."""
        from repro.core.sensitivity import empirical_generalized_sensitivity

        hn = HNTransform(mixed_schema)
        measured = empirical_generalized_sensitivity(hn)
        assert measured == pytest.approx(hn.generalized_sensitivity(), rel=1e-9)

    def test_theorem2_empirical_with_sa(self, mixed_schema):
        from repro.core.sensitivity import empirical_generalized_sensitivity

        hn = HNTransform(mixed_schema, sa_names=("Y",))
        measured = empirical_generalized_sensitivity(hn)
        assert measured == pytest.approx(hn.generalized_sensitivity(), rel=1e-9)


class TestIdentityTransform:
    def test_round_trip(self, rng):
        identity = IdentityTransform(6)
        values = rng.normal(size=(6, 2))
        np.testing.assert_array_equal(identity.inverse(identity.forward(values)), values)

    def test_factors(self):
        identity = IdentityTransform(6)
        assert identity.sensitivity_factor() == 1.0
        assert identity.variance_factor() == 6.0

    def test_rejects_bad_length(self):
        with pytest.raises(TransformError):
            IdentityTransform(0)
