"""Unit tests for the 1-D Haar wavelet transform (paper §IV)."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transforms.haar import (
    HaarTransform,
    haar_forward,
    haar_inverse,
    haar_weight_vector,
)
from repro.transforms.tree import haar_forward_reference, haar_reconstruct_entry


class TestFigure2:
    """The paper's worked example: Figure 2 / Examples 1 and 2."""

    M = np.array([9.0, 3.0, 6.0, 2.0, 8.0, 4.0, 5.0, 7.0])

    def test_coefficients(self):
        coefficients = haar_forward(self.M)
        np.testing.assert_allclose(
            coefficients, [5.5, -0.5, 1.0, 0.0, 3.0, 2.0, 2.0, -1.0]
        )

    def test_example2_reconstruction(self):
        """v2 = c0 + c1 + c2 - c4 = 5.5 - 0.5 + 1 - 3 = 3."""
        c = haar_forward(self.M)
        assert c[0] + c[1] + c[2] - c[4] == pytest.approx(3.0)

    def test_weights_example(self):
        """§IV-B: weights 8, 8, 4, 2 for c0, c1, c2, c4."""
        w = haar_weight_vector(8)
        assert w[0] == 8.0  # base
        assert w[1] == 8.0  # c1 (level 1)
        assert w[2] == 4.0  # c2 (level 2)
        assert w[4] == 2.0  # c4 (level 3)


class TestForwardInverse:
    @pytest.mark.parametrize("length", [1, 2, 4, 8, 16, 64, 256])
    def test_round_trip(self, length, rng):
        values = rng.normal(size=length)
        np.testing.assert_allclose(haar_inverse(haar_forward(values)), values, atol=1e-12)

    def test_round_trip_2d(self, rng):
        values = rng.normal(size=(16, 7))
        np.testing.assert_allclose(haar_inverse(haar_forward(values)), values, atol=1e-12)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TransformError):
            haar_forward(np.zeros(6))
        with pytest.raises(TransformError):
            haar_inverse(np.zeros(6))

    def test_base_coefficient_is_mean(self, rng):
        values = rng.normal(size=32)
        assert haar_forward(values)[0] == pytest.approx(values.mean())

    def test_constant_vector_has_zero_details(self):
        coefficients = haar_forward(np.full(16, 3.25))
        assert coefficients[0] == pytest.approx(3.25)
        np.testing.assert_allclose(coefficients[1:], 0.0, atol=1e-12)

    def test_linearity(self, rng):
        a = rng.normal(size=16)
        b = rng.normal(size=16)
        np.testing.assert_allclose(
            haar_forward(2.0 * a - 3.0 * b),
            2.0 * haar_forward(a) - 3.0 * haar_forward(b),
            atol=1e-12,
        )

    @pytest.mark.parametrize("length", [2, 4, 8, 16, 32])
    def test_matches_reference(self, length, rng):
        values = rng.normal(size=length)
        np.testing.assert_allclose(
            haar_forward(values), haar_forward_reference(values), atol=1e-12
        )

    @pytest.mark.parametrize("length", [2, 8, 16])
    def test_equation3_reconstruction(self, length, rng):
        """Per-entry reconstruction from ancestors matches the inverse."""
        values = rng.normal(size=length)
        coefficients = haar_forward(values)
        for index in range(length):
            assert haar_reconstruct_entry(coefficients, index) == pytest.approx(
                values[index]
            )


class TestWeights:
    def test_layout(self):
        np.testing.assert_array_equal(
            haar_weight_vector(8), [8, 8, 4, 4, 2, 2, 2, 2]
        )

    def test_length_one(self):
        np.testing.assert_array_equal(haar_weight_vector(1), [1.0])

    def test_rejects_non_power(self):
        with pytest.raises(TransformError):
            haar_weight_vector(6)

    def test_weight_sum_of_reciprocals(self):
        """sum 1/W over levels telescopes: base 1/m + sum 2^{i-1}/2^{l-i+1}."""
        w = haar_weight_vector(16)
        assert w[0] == 16


class TestHaarTransformClass:
    def test_padding_round_trip(self, rng):
        transform = HaarTransform(11)
        values = rng.normal(size=11)
        assert transform.padded_length == 16
        assert transform.output_length == 16
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-12
        )

    def test_padding_round_trip_2d(self, rng):
        transform = HaarTransform(5)
        values = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-12
        )

    def test_padded_cells_are_zero(self):
        transform = HaarTransform(3)
        coefficients = transform.forward(np.array([1.0, 2.0, 3.0]))
        full = haar_inverse(coefficients)
        np.testing.assert_allclose(full[3:], 0.0, atol=1e-12)

    def test_shape_validation(self):
        transform = HaarTransform(8)
        with pytest.raises(TransformError):
            transform.forward(np.zeros(7))
        with pytest.raises(TransformError):
            transform.inverse(np.zeros(7))

    def test_sensitivity_factor(self):
        """Lemma 2: 1 + log2 m on the padded domain."""
        assert HaarTransform(8).sensitivity_factor() == 4.0
        assert HaarTransform(11).sensitivity_factor() == 5.0  # padded to 16
        assert HaarTransform(1).sensitivity_factor() == 1.0

    def test_variance_factor(self):
        assert HaarTransform(16).variance_factor() == 3.0

    def test_refine_flag_is_noop(self, rng):
        transform = HaarTransform(8)
        coefficients = transform.forward(rng.normal(size=8))
        np.testing.assert_array_equal(
            transform.inverse(coefficients, refine=True),
            transform.inverse(coefficients, refine=False),
        )

    def test_lemma2_exact_weighted_change(self):
        """Perturbing one entry changes coefficients by exactly the Lemma 2

        accounting: base moves delta/m, the level-i ancestor moves
        delta/2^(l-i+1); the weighted L1 change is (1 + log2 m) * delta.
        """
        transform = HaarTransform(16)
        weights = transform.weight_vector()
        delta = 1.0
        for position in range(16):
            bump = np.zeros(16)
            bump[position] = delta
            change = transform.forward(bump)
            weighted = float(np.abs(change * weights).sum())
            assert weighted == pytest.approx(transform.sensitivity_factor())
