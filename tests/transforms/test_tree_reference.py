"""Error-path tests for the reference (oracle) transforms.

The happy paths are exercised by the equivalence tests in test_haar.py
and test_nominal.py; this module covers the validation branches so the
oracles themselves are trustworthy.
"""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transforms.tree import (
    haar_forward_reference,
    haar_reconstruct_entry,
    nominal_forward_reference,
    nominal_reconstruct_entry,
)


class TestHaarReference:
    def test_rejects_2d(self):
        with pytest.raises(TransformError):
            haar_forward_reference(np.zeros((2, 2)))

    def test_rejects_non_power(self):
        with pytest.raises(TransformError):
            haar_forward_reference(np.zeros(6))

    def test_reconstruct_bounds(self):
        coefficients = haar_forward_reference(np.arange(8.0))
        with pytest.raises(TransformError):
            haar_reconstruct_entry(coefficients, 8)
        with pytest.raises(TransformError):
            haar_reconstruct_entry(coefficients, -1)

    def test_reconstruct_rejects_non_power(self):
        with pytest.raises(TransformError):
            haar_reconstruct_entry(np.zeros(6), 0)

    def test_single_entry(self):
        coefficients = haar_forward_reference(np.array([7.0]))
        np.testing.assert_array_equal(coefficients, [7.0])
        assert haar_reconstruct_entry(coefficients, 0) == 7.0


class TestNominalReference:
    def test_rejects_wrong_length(self, figure3_hierarchy):
        with pytest.raises(TransformError):
            nominal_forward_reference(np.zeros(5), figure3_hierarchy)

    def test_rejects_2d(self, figure3_hierarchy):
        with pytest.raises(TransformError):
            nominal_forward_reference(np.zeros((6, 1)), figure3_hierarchy)

    def test_reconstruct_rejects_wrong_coefficients(self, figure3_hierarchy):
        with pytest.raises(TransformError):
            nominal_reconstruct_entry(np.zeros(5), figure3_hierarchy, 0)

    def test_reconstruct_leaf_bounds(self, figure3_hierarchy, figure3_vector):
        coefficients = nominal_forward_reference(figure3_vector, figure3_hierarchy)
        from repro.errors import HierarchyError

        with pytest.raises(HierarchyError):
            nominal_reconstruct_entry(coefficients, figure3_hierarchy, 99)
