"""Property tests for the matrix-free range adjoints.

Every transform's ``adjoint_range`` must agree with the dense oracle
``R^T r`` where ``R = inverse(identity, refine=True)`` — the exact
construction the old variance path materialized on every call.
"""

import numpy as np
import pytest

from repro.data.hierarchy import balanced_hierarchy, two_level_hierarchy
from repro.errors import TransformError
from repro.transforms.base import IdentityTransform, OneDimensionalTransform
from repro.transforms.haar import HaarTransform
from repro.transforms.nominal import NominalTransform


def dense_adjoint(transform, lo, hi):
    """Oracle: row-slice sum of the dense reconstruction matrix."""
    reconstruction = transform.inverse(
        np.eye(transform.output_length), refine=True
    )
    return reconstruction[lo:hi].sum(axis=0)


def random_ranges(transform, count, rng):
    pairs = np.sort(
        rng.integers(0, transform.input_length + 1, size=(count, 2)), axis=1
    )
    return pairs[:, 0], pairs[:, 1]


class TestHaarAdjoint:
    @pytest.mark.parametrize("domain", [1, 2, 3, 5, 8, 12, 16, 33, 100, 257])
    def test_matches_dense_oracle(self, domain, rng):
        """Closed form == dense, including non-power-of-two padding."""
        transform = HaarTransform(domain)
        lows, highs = random_ranges(transform, 25, rng)
        for lo, hi in zip(lows, highs):
            np.testing.assert_allclose(
                transform.adjoint_range(lo, hi),
                dense_adjoint(transform, lo, hi),
                atol=1e-12,
            )

    def test_padding_truncation(self):
        """With padding, only the real leaves feed the adjoint: the full
        range [0, input_length) is NOT the full padded tree."""
        transform = HaarTransform(5)  # padded to 8
        adjoint = transform.adjoint_range(0, 5)
        np.testing.assert_allclose(adjoint, dense_adjoint(transform, 0, 5))
        # The base coefficient sees 5 leaves, not 8.
        assert adjoint[0] == 5.0

    def test_log_m_sparsity(self):
        """At most 2 nonzeros per level plus the base coefficient."""
        transform = HaarTransform(1 << 12)
        adjoint = transform.adjoint_range(123, 3456)
        assert np.count_nonzero(adjoint) <= 1 + 2 * 12

    def test_batch_matches_singles(self, rng):
        transform = HaarTransform(100)
        lows, highs = random_ranges(transform, 40, rng)
        batch = transform.adjoint_ranges(lows, highs)
        profiles = transform.range_profiles(lows, highs)
        weights = transform.weight_vector()
        for row, (lo, hi) in enumerate(zip(lows, highs)):
            np.testing.assert_allclose(
                batch[row], transform.adjoint_range(lo, hi), atol=1e-12
            )
            assert profiles[row] == pytest.approx(
                float(np.sum((batch[row] / weights) ** 2))
            )

    def test_empty_range(self):
        transform = HaarTransform(16)
        assert np.all(transform.adjoint_range(7, 7) == 0.0)
        assert transform.range_profile(7, 7) == 0.0

    def test_bounds_rejected(self):
        transform = HaarTransform(16)
        with pytest.raises(TransformError):
            transform.adjoint_range(0, 17)
        with pytest.raises(TransformError):
            transform.adjoint_range(-1, 4)
        with pytest.raises(TransformError):
            transform.adjoint_ranges([0, 5], [4, 3])
        with pytest.raises(TransformError):
            transform.range_profiles([0], [[4]])


class TestNominalAdjoint:
    def hierarchies(self, unbalanced_hierarchy):
        return [
            two_level_hierarchy([3, 4, 2]),
            balanced_hierarchy(27, 3),
            unbalanced_hierarchy,  # leaves at mixed depths
        ]

    def test_matches_dense_oracle(self, unbalanced_hierarchy, rng):
        """Bottom-up pass + mean-subtraction adjoint == dense, including
        the refinement step (mean subtraction is symmetric)."""
        for hierarchy in self.hierarchies(unbalanced_hierarchy):
            transform = NominalTransform(hierarchy)
            lows, highs = random_ranges(transform, 30, rng)
            batch = transform.adjoint_ranges(lows, highs)
            for row, (lo, hi) in enumerate(zip(lows, highs)):
                expected = dense_adjoint(transform, lo, hi)
                np.testing.assert_allclose(
                    transform.adjoint_range(lo, hi), expected, atol=1e-12
                )
                np.testing.assert_allclose(batch[row], expected, atol=1e-12)

    def test_profile_matches_dense(self, figure3_hierarchy):
        transform = NominalTransform(figure3_hierarchy)
        weights = transform.weight_vector()
        for lo, hi in [(0, 3), (1, 5), (0, 6), (2, 2)]:
            expected = float(
                np.sum((dense_adjoint(transform, lo, hi) / weights) ** 2)
            )
            assert transform.range_profile(lo, hi) == pytest.approx(expected)


class TestIdentityAdjoint:
    def test_adjoint_is_indicator(self):
        transform = IdentityTransform(7)
        np.testing.assert_allclose(
            transform.adjoint_range(2, 5), [0, 0, 1, 1, 1, 0, 0]
        )
        np.testing.assert_allclose(
            transform.range_profiles([0, 2, 3], [7, 2, 4]), [7.0, 0.0, 1.0]
        )


def densify_sparse(transform, indices, values):
    """Scatter-add a sparse adjoint batch back to dense rows."""
    dense = np.zeros((indices.shape[0], transform.output_length))
    for row in range(indices.shape[0]):
        np.add.at(dense[row], indices[row], values[row])
    return dense


class TestSparseAdjoints:
    """``sparse_adjoint_ranges`` — the coefficient-release gather primitive."""

    @pytest.mark.parametrize("domain", [1, 2, 3, 5, 8, 12, 16, 33, 100, 257])
    def test_haar_matches_dense_adjoint(self, domain, rng):
        transform = HaarTransform(domain)
        lows, highs = random_ranges(transform, 40, rng)
        indices, values = transform.sparse_adjoint_ranges(lows, highs)
        assert indices.shape == values.shape
        assert indices.shape[1] == 1 + 2 * (transform.padded_length.bit_length() - 1)
        assert indices.min() >= 0 and indices.max() < transform.output_length
        np.testing.assert_allclose(
            densify_sparse(transform, indices, values),
            transform.adjoint_ranges(lows, highs),
            atol=1e-12,
        )

    def test_haar_empty_and_full_ranges(self):
        transform = HaarTransform(12)
        lows = np.asarray([0, 12, 0, 5])
        highs = np.asarray([0, 12, 12, 5])
        indices, values = transform.sparse_adjoint_ranges(lows, highs)
        dense = densify_sparse(transform, indices, values)
        np.testing.assert_allclose(dense[0], 0.0)
        np.testing.assert_allclose(dense[3], 0.0)
        np.testing.assert_allclose(
            dense, transform.adjoint_ranges(lows, highs), atol=1e-12
        )

    def test_base_fallback_is_dense(self, rng):
        for transform in [
            NominalTransform(two_level_hierarchy([2, 3])),
            IdentityTransform(9),
        ]:
            lows, highs = random_ranges(transform, 12, rng)
            indices, values = transform.sparse_adjoint_ranges(lows, highs)
            np.testing.assert_allclose(
                densify_sparse(transform, indices, values),
                transform.adjoint_ranges(lows, highs),
                atol=1e-12,
            )

    def test_sparse_dot_answers_ranges(self, rng):
        # g . c must equal the range sum of the reconstruction of c.
        for transform in [
            HaarTransform(37),
            NominalTransform(balanced_hierarchy(8, 2)),
        ]:
            coefficients = rng.normal(size=transform.output_length)
            reconstructed = transform.inverse(coefficients, refine=True)
            lows, highs = random_ranges(transform, 25, rng)
            indices, values = transform.sparse_adjoint_ranges(lows, highs)
            answers = np.einsum("ij,ij->i", coefficients[indices], values)
            expected = np.asarray(
                [reconstructed[lo:hi].sum() for lo, hi in zip(lows, highs)]
            )
            np.testing.assert_allclose(answers, expected, atol=1e-9)


class TestDenseFallback:
    """The base-class implementation all custom transforms inherit."""

    def test_matches_closed_forms(self, rng):
        for transform in [
            HaarTransform(13),
            NominalTransform(two_level_hierarchy([2, 3])),
            IdentityTransform(9),
        ]:
            lows, highs = random_ranges(transform, 10, rng)
            np.testing.assert_allclose(
                OneDimensionalTransform.adjoint_ranges(transform, lows, highs),
                transform.adjoint_ranges(lows, highs),
                atol=1e-12,
            )

    def test_reconstruction_cached_per_instance(self):
        transform = IdentityTransform(6)
        assert getattr(transform, "_cumulative_reconstruction_cache", None) is None
        OneDimensionalTransform.adjoint_range(transform, 1, 4)
        first = transform._cumulative_reconstruction_cache
        assert first is not None
        OneDimensionalTransform.adjoint_range(transform, 0, 6)
        assert transform._cumulative_reconstruction_cache is first
