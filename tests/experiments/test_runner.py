"""Unit tests for the accuracy runner."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.experiments.runner import run_accuracy, time_mechanism
from repro.queries.workload import Workload, generate_workload


@pytest.fixture
def small_setup(mixed_table):
    matrix = mixed_table.frequency_matrix()
    queries = generate_workload(mixed_table.schema, 200, seed=1)
    workload = Workload.evaluate(queries, matrix)
    return matrix, workload


class TestRunAccuracy:
    def test_series_per_mechanism_epsilon(self, small_setup):
        matrix, workload = small_setup
        run = run_accuracy(
            "toy",
            matrix,
            workload,
            [BasicMechanism(), PriveletPlusMechanism(sa_names=())],
            epsilons=(0.5, 1.0),
            seed=2,
        )
        assert len(run.series) == 4
        assert run.num_queries == 200
        series = run.series_for("Basic", 0.5)
        assert series.bucket_errors.shape == (5,)
        assert np.all(series.bucket_errors >= 0)

    def test_metric_and_measure_selection(self, small_setup):
        matrix, workload = small_setup
        run = run_accuracy(
            "toy",
            matrix,
            workload,
            [BasicMechanism()],
            epsilons=(1.0,),
            metric="relative",
            measure="selectivity",
            seed=3,
        )
        assert run.metric == "relative"
        assert run.measure == "selectivity"
        centers = run.series[0].bucket_centers
        assert np.all(np.diff(centers) >= 0)  # quintiles are ordered

    def test_unknown_metric_rejected(self, small_setup):
        matrix, workload = small_setup
        with pytest.raises(ValueError):
            run_accuracy("toy", matrix, workload, [], (1.0,), metric="nope")
        with pytest.raises(ValueError):
            run_accuracy("toy", matrix, workload, [], (1.0,), measure="nope")

    def test_missing_series_lookup(self, small_setup):
        matrix, workload = small_setup
        run = run_accuracy("toy", matrix, workload, [BasicMechanism()], (1.0,), seed=4)
        with pytest.raises(KeyError):
            run.series_for("Privelet", 1.0)

    def test_error_decreases_with_epsilon(self, small_setup):
        """Both mechanisms get more accurate as ε grows (paper: Figures
        6-9 trend)."""
        matrix, workload = small_setup
        run = run_accuracy(
            "toy",
            matrix,
            workload,
            [BasicMechanism()],
            epsilons=(0.25, 4.0),
            seed=5,
        )
        loose = run.series_for("Basic", 0.25).overall_error
        tight = run.series_for("Basic", 4.0).overall_error
        assert tight < loose

    def test_deterministic(self, small_setup):
        matrix, workload = small_setup
        runs = [
            run_accuracy(
                "toy", matrix, workload, [BasicMechanism()], (1.0,), seed=6
            ).series[0].overall_error
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestTimeMechanism:
    def test_returns_positive_seconds(self, mixed_table):
        seconds = time_mechanism(BasicMechanism(), mixed_table, 1.0)
        assert seconds > 0.0

    def test_min_over_repeats(self, mixed_table):
        seconds = time_mechanism(BasicMechanism(), mixed_table, 1.0, repeats=2)
        assert seconds > 0.0
