"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import (
    PAPER_EPSILONS,
    AccuracyConfig,
    TimingConfig,
    full_scale_requested,
)


class TestConfigs:
    def test_paper_epsilons(self):
        assert PAPER_EPSILONS == (0.5, 0.75, 1.0, 1.25)

    def test_accuracy_defaults_are_laptop_sized(self):
        config = AccuracyConfig()
        assert config.scale < 1.0
        assert config.num_rows <= 1_000_000
        assert config.epsilons == PAPER_EPSILONS

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale_requested()
        config = AccuracyConfig.for_environment()
        assert config.scale == 1.0
        assert config.num_rows == 10_000_000
        timing = TimingConfig.for_environment()
        assert timing.fixed_m == 2**24
        assert timing.fixed_n == 5_000_000

    def test_env_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale_requested()
        assert AccuracyConfig.for_environment().scale < 1.0

    def test_timing_defaults(self):
        config = TimingConfig()
        assert len(config.n_values) == 5
        assert len(config.m_values) == 5
        assert config.repeats >= 1

    def test_configs_frozen(self):
        with pytest.raises(Exception):
            AccuracyConfig().scale = 0.5
