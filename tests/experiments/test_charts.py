"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.experiments.charts import ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        text = ascii_chart(
            [1, 10, 100],
            {"Basic": [1e2, 1e3, 1e4], "Privelet+": [5e2, 6e2, 7e2]},
        )
        assert "o = Basic" in text
        assert "x = Privelet+" in text
        assert "o" in text.splitlines()[3] or any(
            "o" in line for line in text.splitlines()
        )

    def test_monotone_series_moves_up(self):
        text = ascii_chart([1, 10, 100], {"s": [1.0, 10.0, 100.0]}, height=10, width=30)
        lines = [line[1:] for line in text.splitlines()[1:11]]
        first_marker_rows = {}
        for row_index, line in enumerate(lines):
            for column, char in enumerate(line):
                if char == "o":
                    first_marker_rows[column] = row_index
        columns = sorted(first_marker_rows)
        rows = [first_marker_rows[c] for c in columns]
        assert rows == sorted(rows, reverse=True)  # up and to the right

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [0.0, 1.0]})
        with pytest.raises(ValueError):
            ascii_chart([0, 2], {"s": [1.0, 1.0]})

    def test_constant_series(self):
        text = ascii_chart([1, 10], {"flat": [5.0, 5.0]})
        assert "flat" in text

    def test_width_height_respected(self):
        text = ascii_chart([1, 10], {"s": [1.0, 2.0]}, width=20, height=5)
        body = text.splitlines()[1:6]
        assert len(body) == 5
        assert all(len(line) == 21 for line in body)  # "|" + 20 cells

    def test_numpy_inputs(self):
        text = ascii_chart(np.array([1.0, 2.0]), {"s": np.array([3.0, 4.0])})
        assert "s" in text
