"""Integration tests for the figure drivers (small configurations)."""

import pytest

from repro.data.census import BRAZIL, US
from repro.experiments.config import AccuracyConfig, TimingConfig
from repro.experiments.figures import (
    PAPER_SA,
    prepare_census_experiment,
    run_relative_error_vs_selectivity,
    run_square_error_vs_coverage,
    run_time_vs_m,
    run_time_vs_n,
)


TINY = AccuracyConfig(scale=0.05, num_rows=8_000, num_queries=600, epsilons=(0.5, 1.25))


@pytest.fixture(scope="module")
def brazil_prepared():
    return prepare_census_experiment(BRAZIL, TINY)


class TestCensusFigures:
    def test_paper_sa(self):
        assert PAPER_SA == ("Age", "Gender")

    def test_figure6_structure(self, brazil_prepared):
        run = run_square_error_vs_coverage(BRAZIL, TINY, prepared=brazil_prepared)
        assert run.dataset == "brazil"
        assert run.metric == "square"
        assert run.measure == "coverage"
        assert {s.mechanism for s in run.series} == {
            "Basic",
            "Privelet+(SA={Age, Gender})",
        }
        assert {s.epsilon for s in run.series} == {0.5, 1.25}

    def test_figure6_shape_basic_grows_with_coverage(self, brazil_prepared):
        """Basic's square error rises steeply with coverage (its defining
        failure mode); the top bucket dwarfs the bottom bucket."""
        run = run_square_error_vs_coverage(BRAZIL, TINY, prepared=brazil_prepared)
        for epsilon in (0.5, 1.25):
            basic = run.series_for("Basic", epsilon)
            assert basic.bucket_errors[-1] > basic.bucket_errors[0] * 10

    def test_figure6_shape_privelet_wins_at_high_coverage(self, brazil_prepared):
        run = run_square_error_vs_coverage(BRAZIL, TINY, prepared=brazil_prepared)
        for epsilon in (0.5, 1.25):
            basic = run.series_for("Basic", epsilon)
            privelet = run.series_for("Privelet+(SA={Age, Gender})", epsilon)
            # Top coverage quintile: Privelet+ ahead by a large factor.
            assert privelet.bucket_errors[-1] < basic.bucket_errors[-1]

    def test_figure8_structure(self, brazil_prepared):
        run = run_relative_error_vs_selectivity(BRAZIL, TINY, prepared=brazil_prepared)
        assert run.metric == "relative"
        assert run.measure == "selectivity"
        # Relative error with a sanity bound cannot blow up unboundedly;
        # check every bucket is finite.
        for series in run.series:
            assert all(e < 1e6 for e in series.bucket_errors)

    def test_us_dataset_runs(self):
        config = AccuracyConfig(
            scale=0.05, num_rows=4_000, num_queries=300, epsilons=(1.0,)
        )
        run = run_square_error_vs_coverage(US, config)
        assert run.dataset == "us"
        assert len(run.series) == 2


class TestTimingFigures:
    def test_figure10_structure(self):
        config = TimingConfig(
            n_values=(2_000, 4_000), fixed_m=2**12, m_values=(2**10,), fixed_n=2_000
        )
        run = run_time_vs_n(config)
        assert run.sweep == "n"
        assert [p.x for p in run.points] == [2_000, 4_000]
        for point in run.points:
            assert point.basic_seconds > 0
            assert point.privelet_seconds > 0

    def test_figure11_structure(self):
        config = TimingConfig(
            n_values=(2_000,), fixed_m=2**10, m_values=(2**10, 2**12), fixed_n=2_000
        )
        run = run_time_vs_m(config)
        assert run.sweep == "m"
        assert [p.x for p in run.points] == [2**10, 2**12]
