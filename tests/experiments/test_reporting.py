"""Unit tests for result rendering."""

from repro.core.basic import BasicMechanism
from repro.experiments.figures import TimingPoint, TimingRun
from repro.experiments.reporting import format_accuracy_run, format_timing_run
from repro.experiments.runner import run_accuracy
from repro.queries.workload import Workload, generate_workload


class TestAccuracyFormat:
    def test_contains_headers_and_rows(self, mixed_table):
        matrix = mixed_table.frequency_matrix()
        workload = Workload.evaluate(
            generate_workload(mixed_table.schema, 60, seed=1), matrix
        )
        run = run_accuracy(
            "toy", matrix, workload, [BasicMechanism()], (0.5, 1.0), seed=2
        )
        text = format_accuracy_run(run)
        assert "toy: average square error vs coverage" in text
        assert "epsilon = 0.5" in text
        assert "epsilon = 1" in text
        assert "Basic" in text
        assert "queries=60" in text

    def test_custom_title(self, mixed_table):
        matrix = mixed_table.frequency_matrix()
        workload = Workload.evaluate(
            generate_workload(mixed_table.schema, 20, seed=1), matrix
        )
        run = run_accuracy("toy", matrix, workload, [BasicMechanism()], (1.0,), seed=2)
        assert format_accuracy_run(run, title="Figure 6").startswith("Figure 6")


class TestChartIntegration:
    def test_chart_appended_when_requested(self, mixed_table):
        matrix = mixed_table.frequency_matrix()
        workload = Workload.evaluate(
            generate_workload(mixed_table.schema, 60, seed=3), matrix
        )
        run = run_accuracy("toy", matrix, workload, [BasicMechanism()], (1.0,), seed=4)
        plain = format_accuracy_run(run)
        charted = format_accuracy_run(run, chart=True)
        assert "shape at epsilon" not in plain
        assert "shape at epsilon = 1" in charted
        assert "o = Basic" in charted

    def test_chart_skipped_on_zero_errors(self, mixed_table):
        """A mechanism with zero error in some bucket cannot be drawn on a
        log scale; the table must still render."""
        import numpy as np

        from repro.experiments.runner import AccuracyRun, BucketedSeries

        series = BucketedSeries(
            mechanism="Perfect",
            epsilon=1.0,
            bucket_centers=np.array([0.1, 0.2]),
            bucket_errors=np.array([0.0, 0.0]),
            overall_error=0.0,
        )
        run = AccuracyRun(
            dataset="toy",
            metric="square",
            measure="coverage",
            series=(series,),
            num_queries=2,
            num_tuples=10,
        )
        text = format_accuracy_run(run, chart=True)
        assert "Perfect" in text
        assert "shape at epsilon" not in text


class TestTimingFormat:
    def test_rows_and_ratio(self):
        run = TimingRun(
            sweep="n",
            fixed=1024,
            points=(
                TimingPoint(x=1000, basic_seconds=0.5, privelet_seconds=1.0),
                TimingPoint(x=2000, basic_seconds=1.0, privelet_seconds=2.5),
            ),
        )
        text = format_timing_run(run)
        assert "computation time vs n" in text
        assert "1000" in text
        assert "2.50" in text  # ratio of the second row
