"""Smoke tests: every example script runs to completion.

Examples are the library's public face; this keeps them from rotting.
Each runs in a subprocess with the repo's interpreter.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"
