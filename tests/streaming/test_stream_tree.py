"""Tests for the dyadic time-hierarchy math."""

import math

import pytest

from repro.errors import StreamingError
from repro.streaming.tree import cover_bound, dyadic_cover, merge_path, node_span


class TestNodeSpan:
    def test_leaf(self):
        assert node_span(0, 5) == (5, 6)

    def test_internal(self):
        assert node_span(3, 2) == (16, 24)

    def test_negative_rejected(self):
        with pytest.raises(StreamingError, match="invalid tree node"):
            node_span(-1, 0)
        with pytest.raises(StreamingError, match="invalid tree node"):
            node_span(0, -2)


class TestMergePath:
    def test_first_epoch_is_leaf_only(self):
        assert merge_path(0) == [(0, 0)]

    def test_odd_epoch_completes_parent(self):
        assert merge_path(1) == [(0, 1), (1, 0)]

    def test_power_of_two_boundary_completes_chain(self):
        assert merge_path(7) == [(0, 7), (1, 3), (2, 1), (3, 0)]

    def test_even_epoch_is_leaf_only(self):
        assert merge_path(4) == [(0, 4)]

    def test_spans_end_at_the_closed_epoch(self):
        for epoch in range(64):
            for level, index in merge_path(epoch):
                lo, hi = node_span(level, index)
                assert hi == epoch + 1
                assert lo >= 0

    def test_negative_rejected(self):
        with pytest.raises(StreamingError, match="invalid epoch"):
            merge_path(-1)


class TestDyadicCover:
    def test_empty_window(self):
        assert dyadic_cover(3, 3) == []

    def test_single_epoch(self):
        assert dyadic_cover(5, 6) == [(0, 5)]

    def test_aligned_power_of_two(self):
        assert dyadic_cover(0, 8) == [(3, 0)]

    def test_mixed_window(self):
        assert dyadic_cover(1, 7) == [(0, 1), (1, 1), (1, 2), (0, 6)]
        assert dyadic_cover(1, 5) == [(0, 1), (1, 1), (0, 4)]

    def test_invalid_rejected(self):
        with pytest.raises(StreamingError, match="invalid epoch window"):
            dyadic_cover(-1, 2)
        with pytest.raises(StreamingError, match="invalid epoch window"):
            dyadic_cover(4, 2)

    def test_cover_is_exact_disjoint_and_sorted(self):
        for lo in range(0, 40):
            for hi in range(lo, 41):
                cover = dyadic_cover(lo, hi)
                position = lo
                for level, index in cover:
                    span_lo, span_hi = node_span(level, index)
                    assert span_lo == position
                    position = span_hi
                assert position == hi

    def test_nodes_are_aligned(self):
        for lo in range(0, 40):
            for hi in range(lo, 41):
                for level, index in dyadic_cover(lo, hi):
                    span_lo, _ = node_span(level, index)
                    assert span_lo % (1 << level) == 0

    def test_cover_available_in_closed_prefix(self):
        """Every cover node completed by the time epoch hi-1 closed."""
        for lo in range(0, 33):
            for hi in range(lo + 1, 33):
                completed = {
                    node for epoch in range(hi) for node in merge_path(epoch)
                }
                assert set(dyadic_cover(lo, hi)) <= completed

    def test_cover_size_within_bound(self):
        """Acceptance criterion: <= 2*ceil(log2 T) nodes per window."""
        for total in range(1, 66):
            bound = cover_bound(total)
            assert bound <= max(1, 2 * math.ceil(math.log2(max(total, 2))))
            for lo in range(0, total):
                for hi in range(lo + 1, total + 1):
                    cover = dyadic_cover(lo, hi)
                    assert len(cover) <= cover_bound(hi - lo) <= bound


class TestCoverBound:
    def test_small_values(self):
        assert cover_bound(0) == 0
        assert cover_bound(1) == 1
        assert cover_bound(2) == 2
        assert cover_bound(3) == 4

    def test_negative_rejected(self):
        with pytest.raises(StreamingError, match="invalid window length"):
            cover_bound(-1)
