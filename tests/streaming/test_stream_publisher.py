"""Tests for the streaming publisher (ingest, epochs, merges, archives)."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.data.schema import Schema
from repro.data.attributes import OrdinalAttribute
from repro.data.table import Table
from repro.errors import StreamingError
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher, epoch_seed

SPEC = BRAZIL.scaled(0.05)
EPS = 1.0


@pytest.fixture
def schema():
    return census_schema(SPEC)


@pytest.fixture
def publisher(schema):
    return StreamingPublisher(
        schema, PriveletPlusMechanism(sa_names="auto"), EPS, seed=20100301
    )


def epoch_table(seed: int, rows: int = 300) -> Table:
    return generate_census_table(SPEC, rows, seed=seed)


class TestIngest:
    def test_rows_buffer_into_open_epoch(self, publisher):
        assert publisher.ingest(epoch_table(1)) == 300
        assert publisher.pending_rows == 300
        assert publisher.closed_epochs == 0

    def test_timestamps_route_to_future_epochs(self, publisher):
        table = epoch_table(1, rows=10)
        stamps = np.asarray([0, 0, 1, 1, 1, 2, 5, 5, 5, 5])
        publisher.ingest(table, stamps)
        assert publisher.pending_rows == 10
        publisher.advance_epoch()  # epoch 0: two rows
        publisher.advance_epoch()  # epoch 1: three rows
        assert publisher.pending_rows == 5

    def test_epoch_length_buckets_timestamps(self, schema):
        publisher = StreamingPublisher(
            schema, PriveletPlusMechanism(sa_names="auto"), EPS,
            epoch_length=10, seed=0,
        )
        table = epoch_table(2, rows=4)
        publisher.ingest(table, [0, 9, 10, 25])
        publisher.advance_epoch()
        # timestamps 0 and 9 belong to epoch 0; 10 and 25 still pending.
        assert publisher.pending_rows == 2

    def test_late_arrival_rejected(self, publisher):
        publisher.advance_epoch()
        with pytest.raises(StreamingError, match="after that epoch was published"):
            publisher.ingest(epoch_table(1, rows=2), [0, 1])

    def test_wrong_schema_rejected(self, publisher):
        other = Table(Schema([OrdinalAttribute("x", 4)]), [[1], [2]])
        with pytest.raises(StreamingError, match="does not match the stream's"):
            publisher.ingest(other)

    def test_mismatched_timestamps_rejected(self, publisher):
        with pytest.raises(StreamingError, match="timestamps must have shape"):
            publisher.ingest(epoch_table(1, rows=3), [0, 1])
        with pytest.raises(StreamingError, match="non-negative"):
            publisher.ingest(epoch_table(1, rows=2), [-1, 0])


class TestAdvance:
    def test_empty_epochs_publish_noise_only(self, publisher):
        leaf = publisher.advance_epoch()
        assert publisher.closed_epochs == 1
        # Noise-only: the release answers, with nonzero variance.
        engine = QueryEngine(leaf)
        query = generate_workload(publisher.schema, 1, seed=1)[0]
        assert engine.noise_variance(query) > 0.0

    def test_merges_follow_the_dyadic_tree(self, publisher):
        for _ in range(6):
            publisher.advance_epoch()
        release = publisher.release()
        assert set(release.nodes) == {
            (0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
            (1, 0), (1, 1), (1, 2), (2, 0),
        }

    def test_merged_node_equals_leaf_sum(self, publisher):
        for epoch in range(4):
            publisher.ingest(epoch_table(10 + epoch))
            publisher.advance_epoch()
        release = publisher.release()
        queries = generate_workload(publisher.schema, 30, seed=2)
        merged = QueryEngine(release.node_result(2, 0)).answer_all(queries)
        leaves = sum(
            QueryEngine(release.node_result(0, epoch)).answer_all(queries)
            for epoch in range(4)
        )
        np.testing.assert_allclose(merged, leaves, atol=1e-8)

    def test_merged_lambda_is_root_sum_of_squares(self, publisher):
        for _ in range(4):
            publisher.advance_epoch()
        release = publisher.release()
        leaf_lambda = release.node_result(0, 0).noise_magnitude
        assert release.node_result(1, 0).noise_magnitude == pytest.approx(
            leaf_lambda * np.sqrt(2.0)
        )
        assert release.node_result(2, 0).noise_magnitude == pytest.approx(
            leaf_lambda * 2.0
        )

    def test_advance_to(self, publisher):
        assert publisher.advance_to(5) == 5
        assert publisher.current_epoch == 5
        with pytest.raises(StreamingError, match="cannot rewind"):
            publisher.advance_to(3)

    def test_same_seed_reproduces_the_stream(self, schema):
        answers = []
        for _ in range(2):
            publisher = StreamingPublisher(
                schema, PriveletPlusMechanism(sa_names="auto"), EPS, seed=7
            )
            for epoch in range(3):
                publisher.ingest(epoch_table(20 + epoch))
                publisher.advance_epoch()
            queries = generate_workload(schema, 20, seed=3)
            answers.append(QueryEngine(publisher.result()).answer_all(queries))
        np.testing.assert_array_equal(answers[0], answers[1])

    def test_epoch_seed_is_pure_function(self):
        a = epoch_seed(5, 3)
        b = epoch_seed(5, 3)
        assert np.random.default_rng(a).random() == np.random.default_rng(b).random()
        assert epoch_seed(None, 3) is None
        with pytest.raises(StreamingError, match="invalid epoch"):
            epoch_seed(5, -1)

    def test_dense_stream_merges_too(self, schema):
        publisher = StreamingPublisher(
            schema, BasicMechanism(), EPS, seed=1, materialize=True
        )
        for epoch in range(2):
            publisher.ingest(epoch_table(30 + epoch))
            publisher.advance_epoch()
        release = publisher.release()
        assert release.node_result(1, 0).representation == "dense"
        queries = generate_workload(schema, 10, seed=4)
        merged = QueryEngine(release.node_result(1, 0)).answer_all(queries)
        leaves = sum(
            QueryEngine(release.node_result(0, epoch)).answer_all(queries)
            for epoch in range(2)
        )
        np.testing.assert_allclose(merged, leaves, atol=1e-8)


class TestResult:
    def test_result_accounting(self, publisher):
        for epoch in range(3):
            publisher.ingest(epoch_table(40 + epoch))
            publisher.advance_epoch()
        result = publisher.result()
        leaf = publisher.release().node_result(0, 0)
        assert result.epsilon == EPS
        assert result.noise_magnitude == pytest.approx(leaf.noise_magnitude)
        assert result.variance_bound == pytest.approx(3 * leaf.variance_bound)
        assert result.details["stream"] is True
        assert result.details["epochs"] == 3

    def test_zero_epoch_result(self, publisher):
        result = publisher.result()
        assert result.epsilon == EPS
        assert result.noise_magnitude == 0.0
        assert result.release.epochs == 0


class TestArchiveLifecycle:
    def test_append_and_resume_matches_continuous_run(self, schema, tmp_path):
        path = tmp_path / "stream.npz"
        publisher = StreamingPublisher(
            schema, PriveletPlusMechanism(sa_names="auto"), EPS,
            seed=11, archive_path=path,
        )
        for epoch in range(2):
            publisher.ingest(epoch_table(50 + epoch))
            publisher.advance_epoch()

        resumed = StreamingPublisher.open(path)
        assert resumed.current_epoch == 2
        assert resumed.epsilon == EPS
        resumed.ingest(epoch_table(52))
        resumed.advance_epoch()

        continuous = StreamingPublisher(
            schema, PriveletPlusMechanism(sa_names="auto"), EPS, seed=11
        )
        for epoch in range(3):
            continuous.ingest(epoch_table(50 + epoch))
            continuous.advance_epoch()

        queries = generate_workload(schema, 25, seed=5)
        from repro.io import load_result

        np.testing.assert_array_equal(
            QueryEngine(load_result(path)).answer_all(queries),
            QueryEngine(continuous.result()).answer_all(queries),
        )

    def test_existing_archive_rejected(self, schema, tmp_path):
        path = tmp_path / "stream.npz"
        StreamingPublisher(
            schema, PriveletPlusMechanism(sa_names="auto"), EPS, archive_path=path
        )
        with pytest.raises(Exception, match="already exists"):
            StreamingPublisher(
                schema, PriveletPlusMechanism(sa_names="auto"), EPS,
                archive_path=path,
            )

    def test_open_non_stream_archive_rejected(self, schema, tmp_path):
        from repro.io import save_result

        path = tmp_path / "flat.npz"
        result = PriveletPlusMechanism(sa_names="auto").publish(
            epoch_table(1), EPS, seed=0
        )
        save_result(path, result)
        with pytest.raises(Exception, match="not a stream archive"):
            StreamingPublisher.open(path)


class TestDenseArchiveResume:
    def test_dense_stream_resumes_dense(self, schema, tmp_path):
        """Regression: open() must read the per-node representation, not
        the archive-level 'stream' representation, so a dense stream
        keeps publishing dense nodes after a resume (a coefficient
        epoch would make the next tree merge impossible)."""
        path = tmp_path / "dense.npz"
        publisher = StreamingPublisher(
            schema, BasicMechanism(), EPS, seed=2, materialize=True,
            archive_path=path,
        )
        publisher.ingest(epoch_table(60))
        publisher.advance_epoch()

        resumed = StreamingPublisher.open(path)
        resumed.ingest(epoch_table(61))
        leaf = resumed.advance_epoch()  # completes the (1, 0) merge
        assert leaf.representation == "dense"
        assert resumed.release().node_result(1, 0).representation == "dense"
