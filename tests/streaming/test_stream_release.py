"""Tests for the stream answer backend (windows, variances, engine)."""

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.exact import query_boxes
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.errors import ServingError, StreamingError
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher, cover_bound

SPEC = BRAZIL.scaled(0.05)
EPOCHS = 6


@pytest.fixture(scope="module")
def stream():
    schema = census_schema(SPEC)
    publisher = StreamingPublisher(
        schema, PriveletPlusMechanism(sa_names="auto"), 1.0, seed=20100301
    )
    for epoch in range(EPOCHS):
        publisher.ingest(generate_census_table(SPEC, 250, seed=100 + epoch))
        publisher.advance_epoch()
    return publisher


@pytest.fixture(scope="module")
def queries(stream):
    return generate_workload(stream.schema, 40, seed=9)


def leaf_engines(stream, lo, hi):
    release = stream.release()
    return [QueryEngine(release.node_result(0, epoch)) for epoch in range(lo, hi)]


class TestWindows:
    def test_window_answer_equals_leaf_sum(self, stream, queries):
        for lo, hi in [(0, EPOCHS), (1, 5), (2, 3), (3, 6)]:
            window = stream.release(lo, hi)
            got = QueryEngine(
                dataclasses.replace(stream.result(), release=window)
            ).answer_all(queries)
            want = sum(
                engine.answer_all(queries) for engine in leaf_engines(stream, lo, hi)
            )
            np.testing.assert_allclose(got, want, atol=1e-8)

    def test_window_variance_equals_leaf_sum(self, stream, queries):
        for lo, hi in [(0, EPOCHS), (1, 5), (2, 3)]:
            window = stream.release(lo, hi)
            got = window.noise_variances_boxes(
                *query_boxes(queries, stream.schema.shape)
            )
            want = sum(
                engine.noise_variances(queries)
                for engine in leaf_engines(stream, lo, hi)
            )
            np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_every_window_within_cover_bound(self, stream):
        """Acceptance criterion: <= 2*ceil(log2 T) node releases touched."""
        bound = 2 * math.ceil(math.log2(EPOCHS))
        for lo in range(EPOCHS):
            for hi in range(lo + 1, EPOCHS + 1):
                window = stream.release(lo, hi)
                assert window.nodes_touched <= cover_bound(hi - lo)
                assert window.nodes_touched <= max(1, bound)

    def test_full_window_beats_leaf_count(self, stream):
        assert stream.release().nodes_touched < EPOCHS

    def test_empty_window_answers_zero(self, stream, queries):
        window = stream.release(2, 2)
        lows, highs = query_boxes(queries, stream.schema.shape)
        assert np.all(window.answer_boxes(lows, highs) == 0.0)
        assert np.all(window.noise_variances_boxes(lows, highs) == 0.0)

    def test_out_of_range_window_rejected(self, stream):
        with pytest.raises(StreamingError, match="outside the closed prefix"):
            stream.release(0, EPOCHS + 1)
        with pytest.raises(StreamingError, match="outside the closed prefix"):
            stream.release().window(-1, 2)

    def test_window_view_shares_payloads(self, stream):
        release = stream.release()
        view = release.window(0, 4)
        assert view.nodes is release.nodes

    def test_to_matrix_matches_answers(self, stream):
        window = stream.release(1, 3)
        matrix = window.to_matrix()
        box = tuple((0, size) for size in stream.schema.shape)
        assert matrix.values.sum() == pytest.approx(window.answer_box(box))

    def test_marginal_matches_dense_path(self, stream):
        window = stream.release(0, 3)
        marginal = window.marginal(["Age"])
        np.testing.assert_allclose(
            marginal, window.to_matrix().marginal(["Age"]), atol=1e-8
        )


class TestEngineIntegration:
    def test_batch_intervals(self, stream, queries):
        engine = QueryEngine(stream.result())
        batch = engine.answer_all_with_intervals(queries, confidence=0.9)
        assert np.all(batch.lowers <= batch.estimates)
        assert np.all(batch.estimates <= batch.uppers)
        assert np.all(batch.noise_stds > 0.0)

    def test_sa_override_rejected(self, stream):
        with pytest.raises(ServingError, match="own SA configuration"):
            QueryEngine(stream.result(), sa_names=("Age",))

    def test_marginal_with_std(self, stream):
        engine = QueryEngine(stream.result())
        values, stds = engine.marginal_with_std(["Gender"])
        assert values.shape == stds.shape == (stream.schema["Gender"].size,)
        assert np.all(stds > 0.0)

    def test_profile_cache_counters_aggregate(self, stream, queries):
        engine = QueryEngine(stream.result())
        engine.noise_variances(queries)
        cache = engine.profile_cache
        assert cache.misses > 0
        engine.noise_variances(queries)
        assert cache.hits > 0


class TestConvert:
    def test_convert_to_dense_preserves_answers(self, stream, queries):
        from repro.core.release import convert_result

        converted = convert_result(stream.result(), "dense")
        assert converted.release.representation == "stream"
        np.testing.assert_allclose(
            QueryEngine(converted).answer_all(queries),
            QueryEngine(stream.result()).answer_all(queries),
            atol=1e-6,
        )

    def test_convert_noop_when_uniform(self, stream):
        release = stream.release()
        assert release.convert("coefficients") is release
