"""Tests for the adaptive micro-batcher."""

import threading
import time

import pytest

from repro.errors import ServingError
from repro.serving.batching import MicroBatcher


class TestCoalescing:
    def test_single_item_round_trip(self):
        with MicroBatcher(lambda items: [x * 2 for x in items]) as batcher:
            assert batcher.submit(21).result(timeout=5) == 42

    def test_concurrent_submits_coalesce(self):
        release = threading.Event()
        batch_sizes = []

        def handler(items):
            release.wait(5)
            batch_sizes.append(len(items))
            return items

        with MicroBatcher(handler, max_linger_seconds=0.05) as batcher:
            first = batcher.submit(0)  # occupies the drain thread
            time.sleep(0.02)
            rest = [batcher.submit(i) for i in range(1, 8)]
            release.set()
            assert first.result(timeout=5) == 0
            assert [f.result(timeout=5) for f in rest] == list(range(1, 8))
        # Everything submitted within the linger window coalesces: far
        # fewer handler calls than items, and at least one real batch.
        assert sum(batch_sizes) == 8
        assert len(batch_sizes) <= 3
        assert max(batch_sizes) > 1

    def test_max_batch_bounds_coalescing(self):
        release = threading.Event()
        batch_sizes = []

        def handler(items):
            release.wait(5)
            batch_sizes.append(len(items))
            return items

        with MicroBatcher(handler, max_batch=3, max_linger_seconds=0.05) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            release.set()
            [f.result(timeout=5) for f in futures]
        assert max(batch_sizes) <= 3


class TestFailureIsolation:
    def test_exception_result_fails_only_that_item(self):
        def handler(items):
            return [
                ServingError("odd") if item % 2 else item for item in items
            ]

        with MicroBatcher(handler) as batcher:
            good = batcher.submit(2)
            bad = batcher.submit(3)
            assert good.result(timeout=5) == 2
            with pytest.raises(ServingError, match="odd"):
                bad.result(timeout=5)

    def test_handler_raise_fails_whole_batch(self):
        def handler(items):
            raise RuntimeError("boom")

        with MicroBatcher(handler) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)

    def test_length_mismatch_is_serving_error(self):
        with MicroBatcher(lambda items: []) as batcher:
            future = batcher.submit(1)
            with pytest.raises(ServingError, match="results"):
                future.result(timeout=5)


class TestLifecycle:
    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda items: items)
        batcher.close()
        with pytest.raises(ServingError) as excinfo:
            batcher.submit(1)
        assert excinfo.value.code == "closed"

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda items: items)
        batcher.close()
        batcher.close()

    def test_counters(self):
        with MicroBatcher(lambda items: items) as batcher:
            for i in range(5):
                batcher.submit(i).result(timeout=5)
        assert batcher.items == 5
        assert batcher.batches >= 1
        assert batcher.largest_batch >= 1
        assert batcher.mean_batch_size == pytest.approx(
            batcher.items / batcher.batches
        )

    def test_rejects_bad_linger_bounds(self):
        with pytest.raises(ServingError, match="linger"):
            MicroBatcher(lambda items: items, min_linger_seconds=0.5,
                         max_linger_seconds=0.1)


class TestAdaptiveLinger:
    def test_solo_batches_shrink_the_window(self):
        batcher = MicroBatcher(
            lambda items: items, max_linger_seconds=0.008, min_linger_seconds=0.0
        )
        try:
            start = batcher.linger_seconds
            for i in range(6):
                batcher.submit(i).result(timeout=5)
            assert batcher.linger_seconds < start
        finally:
            batcher.close()

    def test_adapt_grows_on_full_batches(self):
        batcher = MicroBatcher(lambda items: items, max_batch=4,
                               max_linger_seconds=0.01)
        try:
            batcher._linger = 0.0
            batcher._adapt(4)
            assert batcher.linger_seconds > 0.0
            grown = batcher.linger_seconds
            batcher._adapt(4)
            assert batcher.linger_seconds >= grown
            batcher._adapt(1)
            assert batcher.linger_seconds < batcher._max_linger
        finally:
            batcher.close()

    def test_window_recovers_under_sustained_medium_batches(self):
        """Regression: a solo burst must not lock the window near zero.

        The old rule only grew the window on batches >= max_batch // 2
        (128 by default) yet halved it on every solo batch, so after a
        quiet period steady batches of 32 — far below 128 — could never
        rebuild it and batching collapsed exactly when it paid most.
        """
        batcher = MicroBatcher(lambda items: items, max_linger_seconds=0.002)
        try:
            # A quiet period: a long run of solo batches ratchets the
            # window down to (effectively) zero.
            for _ in range(50):
                batcher._adapt(1)
            assert batcher.linger_seconds < 1e-9
            # Sustained medium traffic: batches of 32 (default max_batch
            # is 256, so the old >= 128 rule never fired here).
            for _ in range(50):
                batcher._adapt(32)
            assert batcher.linger_seconds == batcher._max_linger
        finally:
            batcher.close()

    def test_any_coalesced_batch_grows_the_window(self):
        batcher = MicroBatcher(lambda items: items, max_linger_seconds=0.002)
        try:
            batcher._linger = 0.0
            batcher._adapt(2)
            assert batcher.linger_seconds > 0.0
        finally:
            batcher.close()


class TestCloseReporting:
    def test_close_reports_clean_exit(self):
        batcher = MicroBatcher(lambda items: items)
        batcher.submit(1).result(timeout=5)
        assert batcher.close() is True
        assert batcher.close() is True  # idempotent, still reports truth

    def test_close_reports_timed_out_join(self):
        release = threading.Event()
        started = threading.Event()

        def slow_handler(items):
            started.set()
            release.wait(timeout=10)
            return items

        batcher = MicroBatcher(slow_handler, max_linger_seconds=0.0)
        future = batcher.submit(1)
        assert started.wait(timeout=5)
        # The drain thread is stuck inside the handler: the join must
        # time out and close must say so instead of silently returning.
        assert batcher.close(timeout=0.05) is False
        release.set()
        assert batcher.close(timeout=5.0) is True
        assert future.result(timeout=5) == 1


class TestWeightedSubmit:
    def test_weight_counts_toward_max_batch(self):
        batches = []

        def handler(items):
            batches.append(list(items))
            return items

        with MicroBatcher(handler, max_batch=8, max_linger_seconds=0.05) as batcher:
            first = batcher.submit("bulk", weight=8)
            second = batcher.submit("one", weight=2)
            third = batcher.submit("more", weight=1)
            assert first.result(timeout=5) == "bulk"
            assert second.result(timeout=5) == "one"
            assert third.result(timeout=5) == "more"
        # The full-weight item saturated its batch and dispatched alone
        # without lingering; items/largest_batch count weighted units.
        assert batches[0] == ["bulk"]
        assert batcher.items == 11
        assert batcher.largest_batch == 8

    def test_rejects_nonpositive_weight(self):
        with MicroBatcher(lambda items: items) as batcher:
            with pytest.raises(ValueError):
                batcher.submit("x", weight=0)
