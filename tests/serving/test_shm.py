"""Shared-memory hygiene: round-trips, unlink discipline, crash sweeps.

Segments are the one resource the fleet owns outside its own process
tree, so their lifecycle is tested directly:

* publish → attach reproduces the release bit for bit, with the mapped
  arrays enforced read-only;
* a cleanly closed fleet leaves ``/dev/shm`` empty of its prefix;
* segments orphaned by a *crashed* parent (pid no longer alive) are
  swept on the next server start — live owners' segments are never
  touched;
* a stream-release refresh republishes fresh segments, every worker
  re-attaches, and not a single concurrent query is dropped.
"""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.serving.network import NetworkServer
from repro.serving.shm import (
    attach_result_from_shm,
    publish_result_to_shm,
    sweep_stale_segments,
)
from repro.streaming import StreamingPublisher

from _network_helpers import JsonLineClient, hard_deadline

SPEC = BRAZIL.scaled(0.05)
SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="POSIX shared memory not mounted"
)


def _segments(prefix):
    return sorted(n for n in os.listdir(SHM_DIR) if n.startswith(prefix))


@pytest.fixture(scope="module")
def table():
    return generate_census_table(SPEC, 1_000, seed=0)


@pytest.fixture(scope="module")
def result(table):
    return PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=1, materialize=False
    )


class TestPublishAttachRoundTrip:
    def test_round_trip_is_bit_identical_and_read_only(self, result):
        prefix = f"shmtest-rt-{os.getpid()}"
        publication = publish_result_to_shm(result, prefix=prefix)
        try:
            assert _segments(prefix) == sorted(publication.segment_names)
            attachment = attach_result_from_shm(publication.manifest)
            mirrored = attachment.result
            assert mirrored.epsilon == result.epsilon
            assert mirrored.noise_magnitude == result.noise_magnitude
            assert np.array_equal(
                np.asarray(mirrored.release.coefficients),
                np.asarray(result.release.coefficients),
            )
            queries = generate_workload(result.release.schema, 8, seed=3)
            truth = QueryEngine(result).answer_all_with_intervals(queries, 0.95)
            mirror = QueryEngine(mirrored).answer_all_with_intervals(queries, 0.95)
            assert np.array_equal(truth.estimates, mirror.estimates)
            assert np.array_equal(truth.noise_stds, mirror.noise_stds)
            with pytest.raises((ValueError, RuntimeError)):
                np.asarray(mirrored.release.coefficients)[0] = 1.0
            attachment.close()
        finally:
            publication.close()
            publication.unlink()
        assert _segments(prefix) == []

    def test_unlink_is_idempotent(self, result):
        prefix = f"shmtest-idem-{os.getpid()}"
        publication = publish_result_to_shm(result, prefix=prefix)
        publication.close()
        publication.unlink()
        publication.unlink()
        assert _segments(prefix) == []


class TestCleanShutdownHygiene:
    def test_fleet_close_unlinks_every_segment(self, result):
        prefix = f"shmtest-clean-{os.getpid()}"
        server = NetworkServer(workers=2, shm_prefix=prefix)
        server.register("census", result)
        with hard_deadline(120):
            address = server.start()
            assert _segments(prefix)  # published while serving
            with JsonLineClient(address) as client:
                assert client.request(
                    {"op": "query", "release": "census", "ranges": {"Age": [0, 5]}}
                )["ok"]
            server.close()
        assert _segments(prefix) == []


class TestCrashSweep:
    def test_dead_owner_segments_swept_live_ones_kept(self):
        prefix = "shmtest-sweep"
        # A child creates prefix-named segments and exits: its pid is
        # dead, its segments are orphans — the simulated parent crash.
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                (
                    "import os\n"
                    "from multiprocessing import resource_tracker, shared_memory\n"
                    f"for i in range(2):\n"
                    f"    s = shared_memory.SharedMemory(\n"
                    f"        name=f'{prefix}-{{os.getpid()}}-dead-{{i}}',\n"
                    "        create=True, size=16)\n"
                    "    resource_tracker.unregister(s._name, 'shared_memory')\n"
                    "    s.close()\n"
                    "print(os.getpid())\n"
                ),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(child.stdout)
        orphans = [f"{prefix}-{dead_pid}-dead-{i}" for i in range(2)]
        assert set(orphans) <= set(_segments(prefix))
        # This process is alive: its segment must survive the sweep.
        from multiprocessing import resource_tracker, shared_memory

        live = shared_memory.SharedMemory(
            name=f"{prefix}-{os.getpid()}-live-0", create=True, size=16
        )
        resource_tracker.unregister(live._name, "shared_memory")
        try:
            removed = sweep_stale_segments(prefix=prefix)
            assert sorted(removed) == sorted(orphans)
            assert _segments(prefix) == [f"{prefix}-{os.getpid()}-live-0"]
        finally:
            live.close()
            try:
                live.unlink()
            except FileNotFoundError:
                pass

    def test_server_start_sweeps_previous_crash(self, result):
        prefix = "shmtest-restart"
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                (
                    "import os\n"
                    "from multiprocessing import resource_tracker, shared_memory\n"
                    f"s = shared_memory.SharedMemory(name=f'{prefix}-{{os.getpid()}}-x-0',\n"
                    "    create=True, size=16)\n"
                    "resource_tracker.unregister(s._name, 'shared_memory')\n"
                    "s.close()\n"
                    "print(os.getpid())\n"
                ),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        orphan = f"{prefix}-{int(child.stdout)}-x-0"
        assert orphan in _segments(prefix)
        server = NetworkServer(workers=1, shm_prefix=prefix)
        server.register("census", result)
        with hard_deadline(120):
            server.start()
            assert orphan not in _segments(prefix)  # swept at startup
            server.close()
        assert _segments(prefix) == []


class TestStreamRefresh:
    def test_refresh_republishes_and_no_query_drops(self, tmp_path):
        prefix = f"shmtest-stream-{os.getpid()}"
        archive = tmp_path / "events.npz"
        publisher = StreamingPublisher(
            census_schema(SPEC),
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            seed=7,
            archive_path=archive,
        )
        for epoch in range(2):
            publisher.ingest(generate_census_table(SPEC, 200, seed=50 + epoch))
            publisher.advance_epoch()
        server = NetworkServer(
            workers=2,
            shm_prefix=prefix,
            watch_streams=False,
            max_linger_seconds=0.001,
        )
        server.register_archive(archive, name="stream")
        failures = []
        answered = []
        stop = threading.Event()

        def spam():
            with JsonLineClient(server.address, timeout=30.0) as client:
                while not stop.is_set():
                    answer = client.request(
                        {
                            "op": "query",
                            "release": "stream",
                            "ranges": {"Age": [0, 10]},
                        }
                    )
                    if answer is None or not answer["ok"]:
                        failures.append(answer)
                        return
                    answered.append(answer["estimate"])

        with hard_deadline(180):
            server.start()
            try:
                before = set(_segments(prefix))
                spammers = [threading.Thread(target=spam) for _ in range(3)]
                for thread in spammers:
                    thread.start()
                # Grow the stream on disk, then republish its segments.
                publisher.ingest(generate_census_table(SPEC, 200, seed=99))
                publisher.advance_epoch()
                server.refresh("stream")
                after = set(_segments(prefix))
                # Fresh segments exist; the old generation is unlinked.
                assert after and after.isdisjoint(before)
                with JsonLineClient(server.address) as client:
                    windowed = client.request(
                        {
                            "op": "query",
                            "release": "stream",
                            "ranges": {"Age": [0, 10]},
                            "time_range": [2, 3],  # the epoch just added
                        }
                    )
                assert windowed["ok"] is True
                stop.set()
                for thread in spammers:
                    thread.join()
            finally:
                stop.set()
                server.close()
        # Zero dropped or failed queries across the refresh.
        assert failures == []
        assert answered  # traffic actually flowed throughout
        assert _segments(prefix) == []

    def test_watcher_refreshes_from_disk(self, tmp_path):
        """watch_streams=True notices an appended epoch by itself."""
        prefix = f"shmtest-watch-{os.getpid()}"
        archive = tmp_path / "watched.npz"
        publisher = StreamingPublisher(
            census_schema(SPEC),
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            seed=11,
            archive_path=archive,
        )
        publisher.ingest(generate_census_table(SPEC, 200, seed=1))
        publisher.advance_epoch()
        server = NetworkServer(
            workers=1,
            shm_prefix=prefix,
            watch_streams=True,
            stream_poll_seconds=0.05,
        )
        server.register_archive(archive, name="stream")
        with hard_deadline(180):
            server.start()
            try:
                publisher.ingest(generate_census_table(SPEC, 200, seed=2))
                publisher.advance_epoch()
                with JsonLineClient(server.address, timeout=30.0) as client:
                    # Poll until the watcher has republished epoch 1.
                    while True:
                        answer = client.request(
                            {
                                "op": "query",
                                "release": "stream",
                                "ranges": {"Age": [0, 10]},
                                "time_range": [1, 2],
                            }
                        )
                        assert answer is not None
                        if answer["ok"]:
                            break
                        assert answer["code"] == "bad-request"
            finally:
                server.close()
        assert _segments(prefix) == []
