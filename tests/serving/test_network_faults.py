"""Fault injection against the TCP fleet: crashes, disconnects, bad frames.

The network front-end's failure contract, verified with real signals
and real sockets:

* a worker SIGKILLed mid-flight fails its in-flight requests with a
  structured ``worker-lost`` error (never a hang, never a traceback on
  the wire), is respawned, and the *same client connection* keeps
  working — repeated 50 times, each iteration bounded by the
  SIGALRM-based :func:`hard_deadline` guard;
* a client that disconnects with a batch in flight releases its worker
  back-pressure slots, so later clients are not starved;
* truncated, oversized, and malformed frames each close *only* the
  offending connection.
"""

import os
import signal
import socket
import time

import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, generate_census_table
from repro.serving.network import NetworkServer

from _network_helpers import JsonLineClient, hard_deadline

SPEC = BRAZIL.scaled(0.05)
KILL_ITERATIONS = 50
PIPELINED = 8


@pytest.fixture(scope="module")
def result():
    table = generate_census_table(SPEC, 1_000, seed=0)
    return PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=1, materialize=False
    )


@pytest.fixture(scope="module")
def fleet(result):
    """A single-worker fleet: every kill is deterministic."""
    server = NetworkServer(workers=1, max_linger_seconds=0.001)
    server.register("census", result)
    with hard_deadline(120):
        address = server.start()
    yield server, address
    with hard_deadline(60):
        server.close()


def _query(identifier=None):
    return {
        "op": "query",
        "release": "census",
        "ranges": {"Age": [0, 10]},
        "id": identifier,
    }


def _wait_for_worker(server, *, not_pid=None, timeout=30.0):
    """Poll until a live worker (other than ``not_pid``) is up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = server.worker_pids
        if pids and not_pid not in pids:
            return pids[0]
        time.sleep(0.02)
    raise AssertionError(f"no respawned worker within {timeout}s")


class TestWorkerCrash:
    def test_sigkill_mid_flight_50_iterations(self, fleet):
        """The acceptance gate: 50 kill/respawn rounds, zero hangs."""
        server, address = fleet
        with hard_deadline(300), JsonLineClient(address) as client:
            for iteration in range(KILL_ITERATIONS):
                victim = _wait_for_worker(server)
                for index in range(PIPELINED):
                    client.send(_query(f"{iteration}-{index}"))
                # At least one response proves requests are in flight.
                first = client.recv()
                assert first is not None and "ok" in first
                os.kill(victim, signal.SIGKILL)
                answers = [first] + [client.recv() for _ in range(PIPELINED - 1)]
                for answer in answers:
                    # Every pipelined request gets exactly one response:
                    # a real answer or a structured worker-lost error.
                    assert answer is not None, "response lost after worker kill"
                    if answer["ok"]:
                        assert isinstance(answer["estimate"], float)
                    else:
                        assert answer["code"] == "worker-lost"
                        assert "Traceback" not in answer["error"]
                ids = [answer["id"] for answer in answers]
                assert ids == [f"{iteration}-{i}" for i in range(PIPELINED)]
                # The fleet heals: same connection, next request answers.
                _wait_for_worker(server, not_pid=victim)
                post = client.request(_query("post"))
                assert post["ok"] is True
        assert server.respawns >= KILL_ITERATIONS

    def test_worker_lost_error_is_structured(self, fleet):
        """The worker-lost response carries the standard error shape."""
        server, address = fleet
        with hard_deadline(120), JsonLineClient(address) as client:
            victim = _wait_for_worker(server)
            for index in range(PIPELINED):
                client.send(_query(index))
            assert client.recv() is not None
            os.kill(victim, signal.SIGKILL)
            saw_lost = False
            for _ in range(PIPELINED - 1):
                answer = client.recv()
                assert answer is not None
                if not answer["ok"]:
                    assert set(answer) == {"ok", "id", "code", "error"}
                    assert answer["code"] == "worker-lost"
                    saw_lost = True
            _wait_for_worker(server, not_pid=victim)
            assert client.request(_query())["ok"] is True
        # saw_lost may legitimately be False on a fast machine (the
        # whole batch can drain before the kill lands); the structured
        # shape above is asserted whenever one does appear.
        del saw_lost


class TestClientDisconnect:
    def test_disconnect_mid_batch_releases_slots(self, result):
        """An abandoning client must not starve the fleet's slots."""
        server = NetworkServer(
            workers=1, max_pending_per_worker=4, max_linger_seconds=0.001
        )
        server.register("census", result)
        with hard_deadline(180):
            address = server.start()
            try:
                for _ in range(6):
                    rude = JsonLineClient(address)
                    # Fill the worker's entire pending window, then
                    # vanish without reading a single response.
                    for index in range(8):
                        rude.send(_query(index))
                    rude.close()
                # Slots must come back: a polite client gets answers.
                with JsonLineClient(address) as polite:
                    for index in range(8):
                        answer = polite.request(_query(index))
                        assert answer["ok"] is True and answer["id"] == index
            finally:
                server.close()


class TestFrameFaults:
    @pytest.fixture()
    def fleet_address(self, fleet):
        return fleet[1]

    def test_malformed_frame_closes_only_that_connection(self, fleet_address):
        with hard_deadline(60):
            bad = JsonLineClient(fleet_address)
            good = JsonLineClient(fleet_address)
            try:
                bad.send(b"{this is not json\n")
                answer = bad.recv()
                assert answer["ok"] is False and answer["code"] == "bad-request"
                assert "malformed JSON" in answer["error"]
                assert bad.recv() is None  # closed
                assert good.request(_query())["ok"] is True  # untouched
            finally:
                bad.close()
                good.close()

    def test_truncated_frame_closes_without_response(self, fleet_address):
        with hard_deadline(60):
            client = JsonLineClient(fleet_address)
            try:
                client.file.write(b'{"op": "query", "release": "cen')
                client.file.flush()
                client.sock.shutdown(socket.SHUT_WR)  # EOF mid-line
                assert client.recv() is None
            finally:
                client.close()
            with JsonLineClient(fleet_address) as good:
                assert good.request(_query())["ok"] is True

    def test_oversized_frame_closes_only_that_connection(self, fleet_address):
        with hard_deadline(60):
            big = JsonLineClient(fleet_address)
            try:
                big.send(b"x" * (2 << 20) + b"\n")
                answer = big.recv()
                assert answer["ok"] is False and answer["code"] == "bad-request"
                assert "exceeds" in answer["error"]
                assert big.recv() is None
            finally:
                big.close()
            with JsonLineClient(fleet_address) as good:
                assert good.request(_query())["ok"] is True

    def test_unknown_op_keeps_connection_open(self, fleet_address):
        with hard_deadline(60), JsonLineClient(fleet_address) as client:
            answer = client.request({"op": "explode", "id": "x"})
            assert answer["ok"] is False and answer["code"] == "bad-request"
            assert answer["id"] == "x"
            assert client.request(_query())["ok"] is True

    def test_bad_request_payload_is_structured(self, fleet_address):
        """A worker-side parse failure comes back as bad-request."""
        with hard_deadline(60), JsonLineClient(fleet_address) as client:
            answer = client.request(
                {"op": "query", "release": "census", "ranges": "nope", "id": 7}
            )
            assert answer["ok"] is False
            assert answer["code"] == "bad-request"
            assert answer["id"] == 7
            answer = client.request(
                {"op": "query", "release": "ghost", "ranges": {"Age": [0, 1]}}
            )
            assert answer["ok"] is False
            assert answer["code"] == "unknown-release"
