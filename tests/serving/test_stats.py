"""Concurrency and aggregation properties of the serving stats layer.

:class:`LatencyRecorder` is hammered from 16 threads and must account
for *exactly* the recorded samples — totals, window contents, and
p50/p99 all computed from what went in, nothing lost, nothing invented.
:func:`merge_worker_stats` must pool samples (not average percentiles)
and sum counters across snapshots.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, generate_census_table
from repro.serving.registry import ReleaseRegistry
from repro.serving.requests import QueryRequest
from repro.serving.server import ReleaseServer
from repro.serving.stats import LatencyRecorder, merge_worker_stats

THREADS = 16
PER_THREAD = 500


class TestLatencyRecorderConcurrency:
    def test_sixteen_thread_hammer_accounts_every_sample(self):
        recorder = LatencyRecorder(window=THREADS * PER_THREAD)
        barrier = threading.Barrier(THREADS)

        def hammer(thread_index):
            barrier.wait()
            for sample in range(PER_THREAD):
                recorder.record_latency(thread_index * PER_THREAD + sample)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = [
            float(index * PER_THREAD + sample)
            for index in range(THREADS)
            for sample in range(PER_THREAD)
        ]
        assert recorder.recorded == THREADS * PER_THREAD
        assert len(recorder) == THREADS * PER_THREAD
        # Exactly the recorded samples — no loss, no duplication.
        assert sorted(recorder.samples()) == sorted(expected)
        p50, p99 = recorder.percentiles()
        assert p50 == float(np.percentile(expected, 50))
        assert p99 == float(np.percentile(expected, 99))

    def test_window_slides_under_concurrency(self):
        recorder = LatencyRecorder(window=64)
        threads = [
            threading.Thread(
                target=lambda: [recorder.record_latency(1.0) for _ in range(100)]
            )
            for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.recorded == THREADS * 100
        assert len(recorder) == 64
        assert recorder.percentiles() == (1.0, 1.0)

    def test_empty_recorder_percentiles(self):
        recorder = LatencyRecorder()
        assert recorder.percentiles() == (0.0, 0.0)
        assert len(recorder) == 0 and recorder.recorded == 0

    def test_concurrent_reads_see_consistent_snapshots(self):
        """samples()/percentiles() under concurrent writes never blow up."""
        recorder = LatencyRecorder(window=256)
        stop = threading.Event()
        failures = []

        def write():
            value = 0
            while not stop.is_set():
                recorder.record_latency(value % 97)
                value += 1

        def read():
            while not stop.is_set():
                try:
                    window = recorder.samples()
                    assert len(window) <= 256
                    recorder.percentiles()
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        workers = [threading.Thread(target=write) for _ in range(8)] + [
            threading.Thread(target=read) for _ in range(8)
        ]
        for worker in workers:
            worker.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for worker in workers:
            worker.join()
        timer.cancel()
        assert not failures


class TestServerLatencyIntegration:
    def test_server_stats_percentiles_come_from_recorded_samples(self):
        """ReleaseServer's p50/p99 equal percentiles of latency_samples()."""
        table = generate_census_table(BRAZIL.scaled(0.05), 500, seed=0)
        result = PriveletPlusMechanism(sa_names="auto").publish(
            table, 1.0, seed=1, materialize=False
        )
        registry = ReleaseRegistry()
        registry.register("census", result)
        with ReleaseServer(registry, max_linger_seconds=0.001) as server:
            threads = [
                threading.Thread(
                    target=lambda: [
                        server.query(QueryRequest("census", {"Age": (0, 5)}))
                        for _ in range(4)
                    ]
                )
                for _ in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            samples = server.latency_samples()
            stats = server.stats()
        assert stats.requests == THREADS * 4
        assert len(samples) == THREADS * 4
        assert stats.p50_latency_seconds == float(np.percentile(samples, 50))
        assert stats.p99_latency_seconds == float(np.percentile(samples, 99))


def _snapshot(**overrides):
    base = {
        "releases": ("census",),
        "engines_built": 1,
        "requests": 10,
        "errors": 1,
        "batches": 5,
        "mean_batch_size": 2.0,
        "largest_batch": 4,
        "profile_cache_hits": 8,
        "profile_cache_misses": 2,
        "profile_cache_hit_rate": 0.8,
        "profile_cache_evictions": 0,
        "plan_cache_hits": 3,
        "plan_cache_misses": 1,
        "plan_cache_hit_rate": 0.75,
        "plan_cache_evictions": 0,
        "columnar_rows": 100,
        "p50_latency_seconds": 0.01,
        "p99_latency_seconds": 0.02,
        "linger_seconds": 0.002,
        "latency_samples": [0.01, 0.02],
        "pid": 1111,
    }
    base.update(overrides)
    return base


class TestMergeWorkerStats:
    def test_counters_sum_and_percentiles_pool(self):
        first = _snapshot()
        second = _snapshot(
            pid=2222,
            requests=30,
            errors=0,
            batches=15,
            mean_batch_size=4.0,
            largest_batch=9,
            releases=("census", "stream"),
            latency_samples=[0.5, 1.0, 2.0],
            profile_cache_hits=0,
            profile_cache_misses=10,
        )
        merged = merge_worker_stats([first, second])
        assert merged["workers"] == 2
        assert merged["requests"] == 40
        assert merged["errors"] == 1
        assert merged["batches"] == 20
        assert merged["largest_batch"] == 9
        assert merged["releases"] == ("census", "stream")
        # Weighted by batch count: (2*5 + 4*15) / 20.
        assert merged["mean_batch_size"] == pytest.approx(3.5)
        # Recomputed from summed hits/misses, not averaged rates.
        assert merged["profile_cache_hit_rate"] == pytest.approx(8 / 20)
        pooled = [0.01, 0.02, 0.5, 1.0, 2.0]
        assert merged["p50_latency_seconds"] == float(np.percentile(pooled, 50))
        assert merged["p99_latency_seconds"] == float(np.percentile(pooled, 99))
        assert merged["per_worker"] == [
            {"pid": 1111, "requests": 10, "errors": 1},
            {"pid": 2222, "requests": 30, "errors": 0},
        ]

    def test_no_snapshots_is_a_zero_fleet(self):
        merged = merge_worker_stats([])
        assert merged["workers"] == 0
        assert merged["requests"] == 0
        assert merged["p50_latency_seconds"] == 0.0
        assert merged["mean_batch_size"] == 0.0
        assert merged["releases"] == ()

    def test_real_server_snapshot_round_trips(self):
        """An actual asdict(ServerStats) snapshot merges losslessly."""
        table = generate_census_table(BRAZIL.scaled(0.05), 500, seed=0)
        result = PriveletPlusMechanism(sa_names="auto").publish(
            table, 1.0, seed=1, materialize=False
        )
        registry = ReleaseRegistry()
        registry.register("census", result)
        with ReleaseServer(registry, max_linger_seconds=0.001) as server:
            for _ in range(6):
                server.query(QueryRequest("census", {"Age": (0, 5)}))
            snapshot = dataclasses.asdict(server.stats())
            snapshot["latency_samples"] = server.latency_samples()
            snapshot["pid"] = 42
        merged = merge_worker_stats([snapshot])
        assert merged["requests"] == snapshot["requests"]
        assert merged["p99_latency_seconds"] == float(
            np.percentile(snapshot["latency_samples"], 99)
        )
        assert merged["per_worker"][0]["pid"] == 42
