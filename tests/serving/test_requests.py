"""Tests for the serving wire types."""

import json

import pytest

from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.errors import QueryError, ServingError
from repro.serving.requests import (
    ErrorResponse,
    QueryRequest,
    QueryResponse,
    parse_request_line,
)


@pytest.fixture
def schema():
    return Schema([OrdinalAttribute("X", 8), OrdinalAttribute("Y", 4)])


class TestQueryRequest:
    def test_ranges_normalize_from_dict_and_triples(self):
        from_dict = QueryRequest("r", {"Y": (0, 2), "X": (1, 3)})
        from_triples = QueryRequest("r", [("X", 1, 3), ("Y", 0, 2)])
        assert from_dict == from_triples
        assert from_dict.ranges == (("X", 1, 3), ("Y", 0, 2))
        assert hash(from_dict) == hash(from_triples)

    def test_defaults(self):
        request = QueryRequest("r")
        assert request.ranges == ()
        assert request.confidence == 0.95
        assert request.request_id is None

    def test_rejects_bad_release(self):
        with pytest.raises(ServingError, match="release name"):
            QueryRequest("")
        with pytest.raises(ServingError, match="release name"):
            QueryRequest(7)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ServingError, match="confidence"):
            QueryRequest("r", confidence=1.0)
        with pytest.raises(ServingError, match="confidence"):
            QueryRequest("r", confidence="high")

    def test_rejects_bad_ranges(self):
        with pytest.raises(ServingError, match="range"):
            QueryRequest("r", [("X", 1)])
        with pytest.raises(ServingError, match="range"):
            QueryRequest("r", {"X": (1, "wide")})

    def test_to_query_binds_predicates(self, schema):
        query = QueryRequest("r", {"X": (2, 5)}).to_query(schema)
        assert query.box() == ((2, 5), (0, 4))

    def test_to_query_unknown_attribute(self, schema):
        with pytest.raises(QueryError, match="no attribute"):
            QueryRequest("r", {"Bogus": (0, 1)}).to_query(schema)

    def test_to_query_out_of_bounds(self, schema):
        with pytest.raises(QueryError):
            QueryRequest("r", {"X": (0, 100)}).to_query(schema)

    def test_dict_round_trip(self):
        request = QueryRequest("r", {"X": (1, 3)}, confidence=0.9, request_id=42)
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_from_dict_requires_release(self):
        with pytest.raises(ServingError, match="release"):
            QueryRequest.from_dict({"ranges": {}})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServingError, match="unknown request fields"):
            QueryRequest.from_dict({"release": "r", "rangez": {}})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ServingError, match="JSON object"):
            QueryRequest.from_dict([1, 2, 3])
        with pytest.raises(ServingError, match="ranges"):
            QueryRequest.from_dict({"release": "r", "ranges": [1]})


class TestResponses:
    def test_query_response_wire_shape(self):
        response = QueryResponse("r", 10.0, 2.0, 6.0, 14.0, 0.95, request_id=3)
        payload = response.to_dict()
        assert payload["ok"] is True
        assert payload["id"] == 3
        assert payload["estimate"] == 10.0
        json.dumps(payload)  # wire-serializable

    def test_error_response_code_mapping(self):
        serving = ServingError("gone", code="unknown-release")
        assert ErrorResponse.from_exception(serving, 1).code == "unknown-release"
        assert ErrorResponse.from_exception(QueryError("bad"), 1).code == "bad-request"
        assert ErrorResponse.from_exception(ValueError("boom")).code == "internal"
        payload = ErrorResponse.from_exception(serving, 1).to_dict()
        assert payload["ok"] is False and payload["error"] == "gone"


class TestParseRequestLine:
    def test_parses_valid_line(self):
        request = parse_request_line(
            '{"release": "r", "ranges": {"X": [1, 3]}, "id": 9}'
        )
        assert request.release == "r"
        assert request.request_id == 9

    def test_malformed_json_is_serving_error(self):
        with pytest.raises(ServingError, match="malformed JSON"):
            parse_request_line("{nope")
