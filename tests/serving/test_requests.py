"""Tests for the serving wire types."""

import json

import numpy as np
import pytest

from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.errors import QueryError, ServingError
from repro.queries.engine import BatchQueryAnswers
from repro.serving.requests import (
    BatchQueryResponse,
    ErrorResponse,
    QueryBatchRequest,
    QueryRequest,
    QueryResponse,
    parse_request_line,
)


@pytest.fixture
def schema():
    return Schema([OrdinalAttribute("X", 8), OrdinalAttribute("Y", 4)])


class TestQueryRequest:
    def test_ranges_normalize_from_dict_and_triples(self):
        from_dict = QueryRequest("r", {"Y": (0, 2), "X": (1, 3)})
        from_triples = QueryRequest("r", [("X", 1, 3), ("Y", 0, 2)])
        assert from_dict == from_triples
        assert from_dict.ranges == (("X", 1, 3), ("Y", 0, 2))
        assert hash(from_dict) == hash(from_triples)

    def test_defaults(self):
        request = QueryRequest("r")
        assert request.ranges == ()
        assert request.confidence == 0.95
        assert request.request_id is None

    def test_rejects_bad_release(self):
        with pytest.raises(ServingError, match="release name"):
            QueryRequest("")
        with pytest.raises(ServingError, match="release name"):
            QueryRequest(7)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ServingError, match="confidence"):
            QueryRequest("r", confidence=1.0)
        with pytest.raises(ServingError, match="confidence"):
            QueryRequest("r", confidence="high")

    def test_rejects_bad_ranges(self):
        with pytest.raises(ServingError, match="range"):
            QueryRequest("r", [("X", 1)])
        with pytest.raises(ServingError, match="range"):
            QueryRequest("r", {"X": (1, "wide")})

    def test_to_query_binds_predicates(self, schema):
        query = QueryRequest("r", {"X": (2, 5)}).to_query(schema)
        assert query.box() == ((2, 5), (0, 4))

    def test_to_query_unknown_attribute(self, schema):
        with pytest.raises(QueryError, match="no attribute"):
            QueryRequest("r", {"Bogus": (0, 1)}).to_query(schema)

    def test_to_query_out_of_bounds(self, schema):
        with pytest.raises(QueryError):
            QueryRequest("r", {"X": (0, 100)}).to_query(schema)

    def test_dict_round_trip(self):
        request = QueryRequest("r", {"X": (1, 3)}, confidence=0.9, request_id=42)
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_from_dict_requires_release(self):
        with pytest.raises(ServingError, match="release"):
            QueryRequest.from_dict({"ranges": {}})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServingError, match="unknown request fields"):
            QueryRequest.from_dict({"release": "r", "rangez": {}})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ServingError, match="JSON object"):
            QueryRequest.from_dict([1, 2, 3])
        with pytest.raises(ServingError, match="ranges"):
            QueryRequest.from_dict({"release": "r", "ranges": [1]})

    def test_rejects_non_integral_float_bounds(self):
        # Regression: int(3.7) used to truncate a malformed bound to 3,
        # silently answering a different box than the client sent.
        with pytest.raises(ServingError, match="must be an integer"):
            QueryRequest("r", {"X": (1, 3.7)})
        with pytest.raises(ServingError, match="must be an integer"):
            QueryRequest("r", {"X": (0.5, 3)})
        with pytest.raises(ServingError, match="must be an integer"):
            QueryRequest("r", {"X": (True, 3)})
        with pytest.raises(ServingError, match="must be an integer"):
            QueryRequest("r", time_range=(0.5, 2))

    def test_integral_floats_still_accepted(self):
        # JSON clients may well send 3.0 for 3; that is not malformed.
        request = QueryRequest("r", {"X": (1.0, 3.0)}, time_range=(0.0, 2.0))
        assert request.ranges == (("X", 1, 3),)
        assert request.time_range == (0, 2)
        assert all(isinstance(b, int) for b in request.ranges[0][1:])


class TestQueryBatchRequest:
    def _ranges(self):
        return {"X": {"lo": [0, 2], "hi": [4, 2]}, "Y": {"lo": [1, 0], "hi": [3, 4]}}

    def test_columns_decode_to_int64_arrays(self):
        request = QueryBatchRequest("r", self._ranges())
        assert len(request) == 2
        assert request.names == ("X", "Y")
        assert request.lows.dtype == np.int64 and request.lows.shape == (2, 2)
        assert request.highs.tolist() == [[4, 3], [2, 4]]
        assert not request.lows.flags.writeable

    def test_names_sorted_for_plan_key(self):
        request = QueryBatchRequest(
            "r", {"Y": {"lo": [0], "hi": [1]}, "X": {"lo": [0], "hi": [1]}}
        )
        assert request.names == ("X", "Y")
        assert request.plan_key == ("r", ("X", "Y"), None)

    def test_accepts_pair_form_and_float_integral(self):
        request = QueryBatchRequest("r", {"X": ([0.0, 1.0], [2.0, 3.0])})
        assert request.lows.tolist() == [[0], [1]]

    def test_rejects_non_integral_columns(self):
        with pytest.raises(ServingError, match="integer"):
            QueryBatchRequest("r", {"X": {"lo": [0.5], "hi": [2]}})
        with pytest.raises(ServingError, match="integer|finite"):
            QueryBatchRequest("r", {"X": {"lo": [float("nan")], "hi": [2]}})
        with pytest.raises(ServingError, match="integer"):
            QueryBatchRequest("r", {"X": {"lo": ["a"], "hi": [2]}})

    def test_rejects_mismatched_and_empty_columns(self):
        with pytest.raises(ServingError, match="length"):
            QueryBatchRequest("r", {"X": {"lo": [0, 1], "hi": [2]}})
        with pytest.raises(ServingError, match="at least one query row"):
            QueryBatchRequest("r", {"X": {"lo": [], "hi": []}})
        with pytest.raises(ServingError, match="ranges"):
            QueryBatchRequest("r", {})

    def test_rejects_bad_bounds_vectorized(self):
        with pytest.raises(ServingError, match=r"invalid range \[-1, 2\).*row 0"):
            QueryBatchRequest("r", {"X": {"lo": [-1], "hi": [2]}})
        with pytest.raises(ServingError, match=r"invalid range \[3, 2\).*row 1"):
            QueryBatchRequest("r", {"X": {"lo": [0, 3], "hi": [2, 2]}})

    def test_rejects_bad_range_spec_shape(self):
        with pytest.raises(ServingError, match="lo.*hi|hi.*lo"):
            QueryBatchRequest("r", {"X": {"lo": [0]}})
        with pytest.raises(ServingError, match="lo"):
            QueryBatchRequest("r", {"X": [0, 1, 2]})

    def test_bind_scatters_into_full_domain(self, schema):
        request = QueryBatchRequest("r", {"Y": {"lo": [1], "hi": [3]}})
        lows, highs = request.bind(schema)
        assert lows.tolist() == [[0, 1]]
        assert highs.tolist() == [[8, 3]]

    def test_bind_rejects_out_of_domain(self, schema):
        request = QueryBatchRequest("r", {"Y": {"lo": [0], "hi": [5]}})
        with pytest.raises(ServingError, match="exceeds the domain"):
            request.bind(schema)

    def test_dict_round_trip(self):
        request = QueryBatchRequest(
            "r", self._ranges(), confidence=0.9, request_id=7
        )
        payload = json.loads(json.dumps(request.to_dict()))
        again = QueryBatchRequest.from_dict(payload)
        assert again.plan_key == request.plan_key
        assert np.array_equal(again.lows, request.lows)
        assert np.array_equal(again.highs, request.highs)
        assert again.confidence == 0.9 and again.request_id == 7

    def test_from_dict_rejects_unknown_fields_and_op(self):
        with pytest.raises(ServingError, match="unknown"):
            QueryBatchRequest.from_dict(
                {"release": "r", "ranges": self._ranges(), "bogus": 1}
            )
        with pytest.raises(ServingError, match="op"):
            QueryBatchRequest.from_dict(
                {"release": "r", "ranges": self._ranges(), "op": "query"}
            )

    def test_parse_request_line_dispatches_on_op(self):
        line = json.dumps(
            {"op": "query_batch", "release": "r", "ranges": self._ranges()}
        )
        assert isinstance(parse_request_line(line), QueryBatchRequest)
        assert isinstance(
            parse_request_line('{"release": "r"}'), QueryRequest
        )


class TestBatchQueryResponse:
    def _response(self):
        answers = BatchQueryAnswers(
            estimates=np.array([1.0, 2.0]),
            noise_stds=np.array([0.5, 0.25]),
            lowers=np.array([0.0, 1.5]),
            uppers=np.array([2.0, 2.5]),
            confidence=0.9,
        )
        return BatchQueryResponse.from_answers("r", answers, request_id=5)

    def test_adopts_arrays_zero_copy(self):
        answers = BatchQueryAnswers(
            estimates=np.array([1.0]),
            noise_stds=np.array([0.5]),
            lowers=np.array([0.0]),
            uppers=np.array([2.0]),
            confidence=0.9,
        )
        response = BatchQueryResponse.from_answers("r", answers)
        assert response.estimates is answers.estimates

    def test_wire_shape_single_dump(self):
        response = self._response()
        payload = json.loads(response.to_json())
        assert payload["ok"] is True and payload["id"] == 5
        assert payload["count"] == 2
        assert payload["estimates"] == [1.0, 2.0]
        assert payload["noise_stds"] == [0.5, 0.25]

    def test_indexing_yields_scalar_responses(self):
        response = self._response()
        assert len(response) == 2
        first = response[0]
        assert isinstance(first, QueryResponse)
        assert first.estimate == 1.0 and first.confidence == 0.9
        assert [r.estimate for r in response] == [1.0, 2.0]


class TestResponses:
    def test_query_response_wire_shape(self):
        response = QueryResponse("r", 10.0, 2.0, 6.0, 14.0, 0.95, request_id=3)
        payload = response.to_dict()
        assert payload["ok"] is True
        assert payload["id"] == 3
        assert payload["estimate"] == 10.0
        json.dumps(payload)  # wire-serializable

    def test_error_response_code_mapping(self):
        serving = ServingError("gone", code="unknown-release")
        assert ErrorResponse.from_exception(serving, 1).code == "unknown-release"
        assert ErrorResponse.from_exception(QueryError("bad"), 1).code == "bad-request"
        assert ErrorResponse.from_exception(ValueError("boom")).code == "internal"
        payload = ErrorResponse.from_exception(serving, 1).to_dict()
        assert payload["ok"] is False and payload["error"] == "gone"


class TestParseRequestLine:
    def test_parses_valid_line(self):
        request = parse_request_line(
            '{"release": "r", "ranges": {"X": [1, 3]}, "id": 9}'
        )
        assert request.release == "r"
        assert request.request_id == 9

    def test_malformed_json_is_serving_error(self):
        with pytest.raises(ServingError, match="malformed JSON"):
            parse_request_line("{nope")
