"""Tests for the multi-release server: correctness, batching, stats."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.privelet import publish_ordinal_release
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, generate_census_table
from repro.errors import QueryError, ServingError
from repro.io import save_result
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.serving.requests import QueryRequest
from repro.serving.server import ReleaseServer


@pytest.fixture(scope="module")
def census_result():
    table = generate_census_table(BRAZIL.scaled(0.05), 2_000, seed=0)
    return PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=1, materialize=False
    )


@pytest.fixture(scope="module")
def ordinal_result():
    return publish_ordinal_release(np.arange(64, dtype=np.float64), 1.0, seed=2)


@pytest.fixture
def server(census_result, ordinal_result):
    with ReleaseServer(max_linger_seconds=0.001) as srv:
        srv.register("census", census_result)
        srv.register("ordinal", ordinal_result)
        yield srv


class TestAnswers:
    def test_matches_direct_engine(self, server, census_result):
        engine = QueryEngine(census_result)
        request = QueryRequest("census", {"Age": (10, 40)}, confidence=0.9)
        response = server.query(request)
        direct = engine.answer_with_interval(
            request.to_query(engine.schema), confidence=0.9
        )
        assert response.estimate == pytest.approx(direct.estimate)
        assert response.noise_std == pytest.approx(direct.noise_std)
        assert response.lower == pytest.approx(direct.lower)
        assert response.upper == pytest.approx(direct.upper)
        assert response.release == "census"

    def test_full_range_request(self, server, ordinal_result):
        response = server.query(QueryRequest("ordinal"))
        total = ordinal_result.release.answer_box([(0, 64)])
        assert response.estimate == pytest.approx(total)

    def test_mixed_confidences_in_one_batch(self, server):
        narrow = QueryRequest("ordinal", {"value": (0, 32)}, confidence=0.5)
        wide = QueryRequest("ordinal", {"value": (0, 32)}, confidence=0.99)
        responses = server.query_many([narrow, wide])
        assert responses[0].estimate == pytest.approx(responses[1].estimate)
        width = lambda r: r.upper - r.lower  # noqa: E731
        assert width(responses[1]) > width(responses[0])
        assert responses[0].confidence == 0.5

    def test_query_many_matches_engine_batch(self, server, census_result):
        engine = QueryEngine(census_result)
        queries = generate_workload(engine.schema, 40, seed=3)
        requests = [
            QueryRequest(
                "census",
                {p.attribute_name: (p.lo, p.hi) for p in query.predicates},
            )
            for query in queries
        ]
        responses = server.query_many(requests)
        # The request's sorted ranges must describe the same box.
        expected = [
            engine.answer(request.to_query(engine.schema))
            for request in requests
        ]
        np.testing.assert_allclose(
            [response.estimate for response in responses], expected, atol=1e-6
        )

    def test_concurrent_multi_release_traffic(self, server, census_result, ordinal_result):
        engines = {
            "census": QueryEngine(census_result),
            "ordinal": QueryEngine(ordinal_result),
        }
        requests = []
        for lo in range(0, 60, 3):
            requests.append(QueryRequest("ordinal", {"value": (lo, 64)}))
            requests.append(QueryRequest("census", {"Age": (0, lo + 1)}))
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(server.query, requests))
        for request, response in zip(requests, responses):
            engine = engines[request.release]
            expected = engine.answer(request.to_query(engine.schema))
            assert response.estimate == pytest.approx(expected, abs=1e-6)


class TestErrors:
    def test_unknown_release(self, server):
        with pytest.raises(ServingError) as excinfo:
            server.query(QueryRequest("missing"))
        assert excinfo.value.code == "unknown-release"

    def test_bad_request_is_isolated_from_batchmates(self, server, ordinal_result):
        good = server.submit(QueryRequest("ordinal", {"value": (0, 8)}))
        bad = server.submit(QueryRequest("ordinal", {"nope": (0, 1)}))
        unknown = server.submit(QueryRequest("missing"))
        expected = ordinal_result.release.answer_box([(0, 8)])
        assert good.result(timeout=5).estimate == pytest.approx(expected)
        with pytest.raises(QueryError):
            bad.result(timeout=5)
        with pytest.raises(ServingError):
            unknown.result(timeout=5)

    def test_submit_rejects_non_request(self, server):
        with pytest.raises(ServingError, match="QueryRequest"):
            server.submit({"release": "census"})

    def test_closed_server_rejects_submits(self, census_result):
        server = ReleaseServer()
        server.register("census", census_result)
        server.close()
        with pytest.raises(ServingError) as excinfo:
            server.query(QueryRequest("census"))
        assert excinfo.value.code == "closed"

    def test_sa_conflict_surfaces_as_query_error(self, census_result):
        with ReleaseServer(sa_names=("Income",)) as server:
            server.register("census", census_result)
            with pytest.raises(QueryError, match="conflicts"):
                server.query(QueryRequest("census"))


class TestRepresentation:
    def test_conversion_preserves_answers(self, census_result):
        request = QueryRequest("census", {"Age": (5, 25)})
        with ReleaseServer() as as_stored:
            as_stored.register("census", census_result)
            stored = as_stored.query(request)
        with ReleaseServer(representation="dense") as converted:
            converted.register("census", census_result)
            dense = converted.query(request)
            assert converted.engine("census").release.representation == "dense"
        assert dense.estimate == pytest.approx(stored.estimate, abs=1e-6)
        assert dense.noise_std == pytest.approx(stored.noise_std)


class TestArchivesAndStats:
    def test_archive_registration_is_lazy(self, tmp_path, ordinal_result):
        path = tmp_path / "lazy.npz"
        save_result(path, ordinal_result)
        with ReleaseServer() as server:
            server.register_archive(path)
            assert server.names == ("lazy",)
            assert server.describe("lazy")["loaded"] is False
            assert server.stats().engines_built == 0
            response = server.query(QueryRequest("lazy", {"value": (0, 16)}))
            assert server.describe("lazy")["loaded"] is True
            assert server.stats().engines_built == 1
            expected = ordinal_result.release.answer_box([(0, 16)])
            assert response.estimate == pytest.approx(expected)

    def test_stats_counters_and_warm_hit_rate(self, census_result):
        with ReleaseServer() as server:
            server.register("census", census_result)
            requests = [
                QueryRequest("census", {"Age": (lo, lo + 10)}) for lo in range(20)
            ]
            server.query_many(requests)
            cold = server.stats()
            server.query_many(requests)
            warm = server.stats()
        assert cold.requests == 20 and warm.requests == 40
        assert warm.profile_cache_hits > cold.profile_cache_hits
        assert warm.profile_cache_hit_rate > cold.profile_cache_hit_rate
        assert warm.errors == 0
        assert warm.batches >= 2
        assert warm.p50_latency_seconds <= warm.p99_latency_seconds
        assert warm.releases == ("census",)

    def test_error_counter(self, server):
        before = server.stats().errors
        with pytest.raises(ServingError):
            server.query(QueryRequest("missing"))
        assert server.stats().errors == before + 1

    def test_bounded_profile_cache_evicts(self, ordinal_result):
        with ReleaseServer(profile_cache_entries=4) as server:
            server.register("ordinal", ordinal_result)
            for lo in range(0, 60):
                server.query(QueryRequest("ordinal", {"value": (lo, 64)}))
            assert server.stats().profile_cache_evictions > 0


class TestShardedArchives:
    def test_sharded_archive_serves_as_one_release(self, tmp_path):
        from repro.core.sharding import publish_sharded

        table = generate_census_table(BRAZIL.scaled(0.05), 2_000, seed=4)
        result = publish_sharded(
            table,
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            shard_by="Age",
            shards=3,
            seed=6,
            materialize=False,
        )
        path = tmp_path / "sharded.npz"
        save_result(path, result)
        with ReleaseServer(max_linger_seconds=0.001) as server:
            server.register_archive(path, name="census")
            description = server.describe("census")
            assert description["representation"] == "sharded"
            direct = QueryEngine(result)
            requests = [
                QueryRequest("census", {"Age": (lo, lo + 15)}, request_id=lo)
                for lo in range(0, 60, 5)
            ]
            responses = server.query_many(requests)
            for request, response in zip(requests, responses):
                expected = direct.answer_with_interval(
                    request.to_query(direct.schema)
                )
                assert response.estimate == pytest.approx(expected.estimate)
                assert response.noise_std == pytest.approx(expected.noise_std)
            stats = server.stats()
            assert stats.engines_built == 1
            assert stats.profile_cache_misses > 0
            # Narrow requests only touched the shards they intersect.
            engine = server.engine("census")
            assert engine.release.shards_loaded >= 1


class TestCloseReporting:
    def test_close_returns_true_after_clean_drain(self, census_result):
        server = ReleaseServer()
        server.register("census", census_result)
        server.query(QueryRequest("census"))
        assert server.close() is True

    def test_close_surfaces_timed_out_drain(self, census_result, monkeypatch):
        import threading

        release = threading.Event()
        started = threading.Event()
        server = ReleaseServer(max_linger_seconds=0.0)
        server.register("census", census_result)
        inner = server._handle_batch

        def slow_handler(payloads):
            started.set()
            release.wait(timeout=10)
            return inner(payloads)

        monkeypatch.setattr(server._batcher, "_handler", slow_handler)
        future = server.submit(QueryRequest("census"))
        assert started.wait(timeout=5)
        # The drain thread is wedged inside the handler: the server must
        # report the timed-out join instead of silently returning.
        assert server.close(timeout=0.05) is False
        release.set()
        assert server.close(timeout=5.0) is True
        assert future.result(timeout=5).release == "census"


class TestColumnarServing:
    def test_mixed_scalar_and_columnar_in_one_session(self, server):
        from repro.serving.requests import QueryBatchRequest

        batch_future = server.submit(
            QueryBatchRequest("census", {"Age": {"lo": [10], "hi": [40]}})
        )
        scalar_future = server.submit(QueryRequest("census", {"Age": (10, 40)}))
        batch, scalar = batch_future.result(), scalar_future.result()
        assert batch.estimates[0] == scalar.estimate
        assert batch.noise_stds[0] == scalar.noise_std
        assert batch.lowers[0] == scalar.lower
        assert batch.uppers[0] == scalar.upper

    def test_submit_columnar_rejects_scalar_request(self, server):
        with pytest.raises(ServingError, match="QueryBatchRequest"):
            server.submit_columnar(QueryRequest("census"))
        with pytest.raises(ServingError, match="QueryRequest"):
            server.submit(object())

    def test_columnar_batch_counts_rows_toward_max_batch(self, census_result):
        from repro.serving.requests import QueryBatchRequest

        with ReleaseServer(max_batch=8, max_linger_seconds=0.001) as srv:
            srv.register("census", census_result)
            request = QueryBatchRequest(
                "census", {"Age": {"lo": [0] * 6, "hi": [10] * 6}}
            )
            srv.query_columnar(request)
            assert srv._batcher.items == 6
            assert srv._batcher.largest_batch == 6

    def test_columnar_error_isolated_per_wire_item(self, server):
        from repro.serving.requests import QueryBatchRequest

        bad = server.submit(
            QueryBatchRequest("census", {"Age": {"lo": [0], "hi": [500]}})
        )
        good = server.submit(
            QueryBatchRequest("census", {"Age": {"lo": [0], "hi": [10]}})
        )
        with pytest.raises(ServingError, match="exceeds the domain"):
            bad.result()
        assert len(good.result()) == 1

    def test_refresh_invalidates_plans(self, tmp_path, census_result):
        from repro.serving.requests import QueryBatchRequest

        path = tmp_path / "census.npz"
        save_result(path, census_result)
        with ReleaseServer(max_linger_seconds=0.001) as srv:
            srv.register_archive(path)
            srv.query_columnar(
                QueryBatchRequest("census", {"Age": {"lo": [0], "hi": [10]}})
            )
            assert len(srv.plan_cache) == 1
            # Touch the archive so the registry re-opens it on refresh.
            save_result(path, census_result)
            assert srv.refresh("census") is True
            assert len(srv.plan_cache) == 0
            # The next batch recompiles against the fresh engine.
            srv.query_columnar(
                QueryBatchRequest("census", {"Age": {"lo": [0], "hi": [10]}})
            )
            assert srv.plan_cache.misses == 2
