"""Shared helpers for serving tests.

The network tests exercise real sockets and real worker processes, so
two disciplines apply everywhere:

* every potentially-blocking test section runs under
  :func:`hard_deadline` — a SIGALRM-based guard that turns a hang into
  a loud ``TimeoutError`` (the suite has no pytest-timeout plugin, so a
  silent hang would otherwise stall CI);
* clients speak through :class:`JsonLineClient`, which owns the socket
  timeout and the newline-delimited JSON framing.
"""

import contextlib
import json
import signal
import socket


@contextlib.contextmanager
def hard_deadline(seconds):
    """Raise TimeoutError if the block runs longer than ``seconds``.

    SIGALRM interrupts blocking socket/pipe reads too, so a wedged
    server surfaces as a stack trace at the blocked call instead of a
    hung test run.
    """

    def on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s hard deadline")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


class JsonLineClient:
    """A blocking newline-delimited-JSON client for the TCP front-end."""

    def __init__(self, address, timeout=30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.file = self.sock.makefile("rwb")

    def send(self, payload):
        """Write one frame; dicts are JSON-encoded, bytes pass through."""
        if isinstance(payload, bytes):
            line = payload
        else:
            line = json.dumps(payload).encode("utf-8") + b"\n"
        self.file.write(line)
        self.file.flush()

    def recv(self):
        """Read one response frame; ``None`` on EOF/reset (closed)."""
        try:
            raw = self.file.readline()
        except (ConnectionError, OSError):
            return None
        if not raw:
            return None
        return json.loads(raw)

    def request(self, payload):
        """Send one frame and read its response."""
        self.send(payload)
        return self.recv()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
