"""Property: the TCP fleet ≡ the in-process JSONL loop, bit for bit.

The network front-end must be a pure *transport* change: for every
backend the serving layer supports — dense, coefficient, sharded,
stream — a request answered over the socket (through shared-memory
workers in other processes) must carry the exact float64 values the
same seed produces through an in-process :class:`ReleaseServer`,
scalar and columnar, including ``time_range`` windows on the stream
backend.  JSON's float round-trip is exact (``repr`` ↔ parse), so the
comparison really is bit for bit.
"""

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import publish_sharded
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.serving.network import NetworkServer
from repro.serving.requests import QueryBatchRequest, QueryRequest
from repro.serving.server import ReleaseServer
from repro.streaming import StreamingPublisher

from _network_helpers import JsonLineClient, hard_deadline

SPEC = BRAZIL.scaled(0.05)
NAMES = ("Age", "Income")
BATCH = 32
BACKENDS = ("dense", "coefficient", "sharded", "stream")


def _random_ranges(schema, rng, count):
    """Columnar lo/hi arrays over NAMES with lo < hi."""
    ranges = {}
    for name in NAMES:
        size = schema[name].size
        lo = rng.integers(0, size, size=count)
        hi = rng.integers(lo + 1, size + 1)
        ranges[name] = {"lo": lo.tolist(), "hi": hi.tolist()}
    return ranges


def _scalar_boxes(ranges, count):
    return [
        {name: [spec["lo"][row], spec["hi"][row]] for name, spec in ranges.items()}
        for row in range(count)
    ]


def _publish_backends(table, stream_archive):
    mechanism = PriveletPlusMechanism(sa_names="auto")
    return {
        "dense": mechanism.publish(table, 1.0, seed=1, materialize=True),
        "coefficient": mechanism.publish(table, 1.0, seed=2, materialize=False),
        "sharded": publish_sharded(
            table, mechanism, 1.0, shard_by="Age", shards=3, seed=3
        ),
        "stream": stream_archive,
    }


@pytest.fixture(scope="module")
def table():
    return generate_census_table(SPEC, 2_000, seed=0)


@pytest.fixture(scope="module")
def stream_archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "events.npz"
    publisher = StreamingPublisher(
        census_schema(SPEC),
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        seed=20100301,
        archive_path=path,
    )
    for epoch in range(4):
        publisher.ingest(generate_census_table(SPEC, 300, seed=100 + epoch))
        publisher.advance_epoch()
    return path


@pytest.fixture(scope="module")
def reference(table, stream_archive):
    """The in-process ground truth: one ReleaseServer, same releases."""
    backends = _publish_backends(table, stream_archive)
    with ReleaseServer(max_linger_seconds=0.001) as server:
        for name in ("dense", "coefficient", "sharded"):
            server.register(name, backends[name])
        server.register_archive(backends["stream"], name="stream")
        yield server


@pytest.fixture(scope="module")
def fleet(table, stream_archive):
    """The TCP fleet under test: 2 workers over shared memory."""
    backends = _publish_backends(table, stream_archive)
    server = NetworkServer(workers=2, max_linger_seconds=0.001)
    for name in ("dense", "coefficient", "sharded"):
        server.register(name, backends[name])
    server.register_archive(backends["stream"], name="stream")
    with hard_deadline(120):
        address = server.start()
    yield address
    with hard_deadline(60):
        server.close()


class TestNetworkParity:
    @pytest.mark.parametrize("release", BACKENDS)
    def test_scalar_requests_bit_for_bit(self, fleet, reference, release):
        schema = reference.engine(release).schema
        rng = np.random.default_rng(BACKENDS.index(release))
        ranges = _random_ranges(schema, rng, BATCH)
        boxes = _scalar_boxes(ranges, BATCH)
        with hard_deadline(90), JsonLineClient(fleet) as client:
            for box in boxes:
                client.send(
                    {"op": "query", "release": release, "ranges": box}
                )
            answers = [client.recv() for _ in boxes]
        truth = reference.query_many(
            [QueryRequest(release, box) for box in boxes]
        )
        for wire, scalar in zip(answers, truth):
            assert wire["ok"] is True
            assert wire["release"] == release
            assert wire["estimate"] == scalar.estimate
            assert wire["noise_std"] == scalar.noise_std
            assert wire["lower"] == scalar.lower
            assert wire["upper"] == scalar.upper
            assert wire["confidence"] == scalar.confidence

    @pytest.mark.parametrize("release", BACKENDS)
    def test_columnar_batches_bit_for_bit(self, fleet, reference, release):
        schema = reference.engine(release).schema
        rng = np.random.default_rng(10 + BACKENDS.index(release))
        ranges = _random_ranges(schema, rng, BATCH)
        with hard_deadline(90), JsonLineClient(fleet) as client:
            wire = client.request(
                {
                    "op": "query_batch",
                    "release": release,
                    "ranges": ranges,
                    "confidence": 0.9,
                }
            )
        truth = reference.query_columnar(
            QueryBatchRequest(release, ranges, confidence=0.9)
        )
        assert wire["ok"] is True and wire["count"] == BATCH
        assert wire["estimates"] == truth.estimates.tolist()
        assert wire["noise_stds"] == truth.noise_stds.tolist()
        assert wire["lowers"] == truth.lowers.tolist()
        assert wire["uppers"] == truth.uppers.tolist()

    @pytest.mark.parametrize("window", [(0, 2), (1, 4)])
    def test_time_windows_bit_for_bit(self, fleet, reference, window):
        schema = reference.engine("stream").schema
        rng = np.random.default_rng(sum(window))
        ranges = _random_ranges(schema, rng, 16)
        boxes = _scalar_boxes(ranges, 16)
        with hard_deadline(90), JsonLineClient(fleet) as client:
            batch_wire = client.request(
                {
                    "op": "query_batch",
                    "release": "stream",
                    "ranges": ranges,
                    "time_range": list(window),
                }
            )
            scalar_wire = [
                client.request(
                    {
                        "op": "query",
                        "release": "stream",
                        "ranges": box,
                        "time_range": list(window),
                    }
                )
                for box in boxes
            ]
        truth = reference.query_columnar(
            QueryBatchRequest("stream", ranges, time_range=window)
        )
        assert batch_wire["ok"] is True
        assert batch_wire["estimates"] == truth.estimates.tolist()
        assert batch_wire["noise_stds"] == truth.noise_stds.tolist()
        for row, wire in enumerate(scalar_wire):
            assert wire["ok"] is True
            assert wire["estimate"] == truth.estimates[row]
            assert wire["noise_std"] == truth.noise_stds[row]
            assert wire["lower"] == truth.lowers[row]
            assert wire["upper"] == truth.uppers[row]

    def test_requests_interleaved_across_releases(self, fleet, reference):
        """One connection mixing every backend still answers in order."""
        rng = np.random.default_rng(99)
        plan = []
        for release in BACKENDS * 2:
            schema = reference.engine(release).schema
            box = _scalar_boxes(_random_ranges(schema, rng, 1), 1)[0]
            plan.append((release, box))
        with hard_deadline(90), JsonLineClient(fleet) as client:
            for index, (release, box) in enumerate(plan):
                client.send(
                    {
                        "op": "query",
                        "release": release,
                        "ranges": box,
                        "id": index,
                    }
                )
            answers = [client.recv() for _ in plan]
        for index, ((release, box), wire) in enumerate(zip(plan, answers)):
            truth = reference.query(QueryRequest(release, box))
            assert wire["id"] == index and wire["release"] == release
            assert wire["estimate"] == truth.estimate
            assert wire["noise_std"] == truth.noise_std
