"""Tests for the named release registry (including lazy archive entries)."""

import numpy as np
import pytest

from repro.core.privelet import publish_ordinal_release
from repro.errors import ReproError, ServingError
from repro.io import save_result
from repro.serving.registry import ReleaseRegistry


@pytest.fixture
def result():
    return publish_ordinal_release(np.arange(32, dtype=np.float64), 1.0, seed=0)


@pytest.fixture
def archive(tmp_path, result):
    path = tmp_path / "release.npz"
    save_result(path, result)
    return path


class TestInProcess:
    def test_register_and_get(self, result):
        registry = ReleaseRegistry()
        assert registry.register("a", result) == "a"
        assert registry.get("a") is result
        assert "a" in registry and len(registry) == 1

    def test_names_sorted(self, result):
        registry = ReleaseRegistry()
        registry.register("zeta", result)
        registry.register("alpha", result)
        assert registry.names == ("alpha", "zeta")

    def test_duplicate_name_rejected(self, result):
        registry = ReleaseRegistry()
        registry.register("a", result)
        with pytest.raises(ServingError, match="already registered"):
            registry.register("a", result)

    def test_invalid_name_and_value_rejected(self, result):
        registry = ReleaseRegistry()
        with pytest.raises(ServingError, match="non-empty string"):
            registry.register("", result)
        with pytest.raises(ServingError, match="PublishResult"):
            registry.register("a", object())

    def test_unknown_name_has_code(self):
        registry = ReleaseRegistry()
        with pytest.raises(ServingError) as excinfo:
            registry.get("missing")
        assert excinfo.value.code == "unknown-release"
        assert "missing" in str(excinfo.value)

    def test_describe_in_process(self, result):
        registry = ReleaseRegistry()
        registry.register("a", result)
        described = registry.describe("a")
        assert described["source"] == "memory"
        assert described["loaded"] is True
        assert described["shape"] == [32]


class TestArchiveBacked:
    def test_default_name_is_stem(self, archive):
        registry = ReleaseRegistry()
        assert registry.register_archive(archive) == "release"

    def test_lazy_until_first_get(self, archive, result):
        registry = ReleaseRegistry()
        registry.register_archive(archive, name="lazy")
        assert registry.describe("lazy")["loaded"] is False
        loaded = registry.get("lazy")
        assert registry.describe("lazy")["loaded"] is True
        assert loaded.epsilon == result.epsilon
        # Cached: same object on repeat.
        assert registry.get("lazy") is loaded

    def test_describe_without_loading(self, archive):
        registry = ReleaseRegistry()
        registry.register_archive(archive, name="lazy")
        described = registry.describe("lazy")
        assert described["representation"] == "coefficients"
        assert described["epsilon"] == 1.0
        assert described["shape"] == [32]
        assert described["source"] == str(archive)
        assert registry.describe("lazy")["loaded"] is False

    def test_missing_archive_fails_at_registration(self, tmp_path):
        registry = ReleaseRegistry()
        with pytest.raises(ReproError, match="no such archive"):
            registry.register_archive(tmp_path / "absent.npz")

    def test_non_archive_fails_at_registration(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip at all")
        registry = ReleaseRegistry()
        with pytest.raises(ReproError):
            registry.register_archive(path)

    def test_lock_for_is_per_release(self, archive, result):
        registry = ReleaseRegistry()
        registry.register("a", result)
        registry.register_archive(archive, name="b")
        assert registry.lock_for("a") is registry.lock_for("a")
        assert registry.lock_for("a") is not registry.lock_for("b")

    def test_relative_path_pinned_at_registration(
        self, archive, result, tmp_path, monkeypatch
    ):
        """Regression: lazy loading must not re-resolve against a CWD
        that changed between registration and the first query."""
        monkeypatch.chdir(archive.parent)
        registry = ReleaseRegistry()
        registry.register_archive(archive.name, name="rel")
        assert registry.describe("rel")["loaded"] is False
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        loaded = registry.get("rel")  # first touch happens *after* chdir
        assert loaded.epsilon == result.epsilon
        assert registry.describe("rel")["source"] == str(archive)

    def test_refresh_and_stale(self, archive, result):
        registry = ReleaseRegistry()
        registry.register("memory", result)
        registry.register_archive(archive, name="disk")
        assert registry.stale("memory") is False
        assert registry.stale("disk") is False
        assert registry.refresh("memory") is False
        first = registry.get("disk")
        assert registry.refresh("disk") is True
        assert registry.get("disk") is not first
