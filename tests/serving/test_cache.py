"""Tests for the bounded LRU profile cache (and the base cache's counters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact import AxisProfileCache
from repro.serving.cache import LRUProfileCache
from repro.transforms.haar import HaarTransform


@pytest.fixture
def transforms():
    return [HaarTransform(16)]


class TestCounters:
    def test_base_cache_counts_hits_and_misses(self, transforms):
        cache = AxisProfileCache(transforms)
        cache.profiles(0, [0, 2, 0], [8, 6, 8])  # 2 distinct ranges
        assert cache.misses == 2
        assert cache.hits == 0
        cache.profiles(0, [0], [8])
        assert cache.hits == 1
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_scalar_profile_counts(self, transforms):
        cache = AxisProfileCache(transforms)
        cache.profile(0, 0, 8)
        cache.profile(0, 0, 8)
        assert (cache.hits, cache.misses) == (1, 1)


class TestLRUProfileCache:
    def test_matches_unbounded_cache(self, transforms):
        rng = np.random.default_rng(0)
        pairs = np.sort(rng.integers(0, 17, size=(64, 2)), axis=1)
        bounded = LRUProfileCache(transforms, max_entries_per_axis=4)
        unbounded = AxisProfileCache(transforms)
        np.testing.assert_allclose(
            bounded.profiles(0, pairs[:, 0], pairs[:, 1]),
            unbounded.profiles(0, pairs[:, 0], pairs[:, 1]),
        )

    def test_bound_is_respected(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=3)
        for hi in range(1, 9):
            cache.profile(0, 0, hi)
        assert len(cache) == 3
        assert cache.evictions == 5

    def test_recency_protects_entries(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=2)
        cache.profile(0, 0, 4)
        cache.profile(0, 0, 8)
        cache.profile(0, 0, 4)   # refresh (0, 4)
        cache.profile(0, 0, 12)  # evicts (0, 8), not (0, 4)
        misses_before = cache.misses
        cache.profile(0, 0, 4)
        assert cache.misses == misses_before  # still cached

    def test_eviction_then_recompute_is_consistent(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=1)
        first = cache.profile(0, 0, 8)
        cache.profile(0, 0, 4)  # evicts (0, 8)
        assert cache.profile(0, 0, 8) == pytest.approx(first)

    def test_rejects_nonpositive_bound(self, transforms):
        with pytest.raises(ValueError):
            LRUProfileCache(transforms, max_entries_per_axis=0)


#: One batch = the (lo, hi) pairs one `profiles` call asks for.
_range_pair = st.tuples(st.integers(0, 16), st.integers(0, 16)).map(sorted)
_batches = st.lists(
    st.lists(_range_pair, min_size=1, max_size=12), min_size=1, max_size=12
)


class TestEvictionProperties:
    """ISSUE satellite: eviction correctness under churn, property-tested."""

    @settings(max_examples=60, deadline=None)
    @given(batches=_batches)
    def test_churn_past_the_bound_stays_correct(self, batches):
        transforms = [HaarTransform(16)]
        bounded = LRUProfileCache(transforms, max_entries_per_axis=4)
        reference = AxisProfileCache(transforms)
        # A deterministic sweep first, so every run churns past the
        # 4-entry bound no matter what hypothesis generated.
        batches = [[(0, hi) for hi in range(1, 17)]] + batches
        evictions_before = 0
        lookups = 0
        for batch in batches:
            lows = np.asarray([lo for lo, _ in batch])
            highs = np.asarray([hi for _, hi in batch])
            values = bounded.profiles(0, lows, highs)
            # Evicted entries recompute to identical values on re-miss:
            # every answer matches an unbounded cache, whatever was
            # dropped in between.
            np.testing.assert_allclose(
                values, reference.profiles(0, lows, highs), rtol=1e-12
            )
            # The eviction counter is monotone and the bound holds.
            assert bounded.evictions >= evictions_before
            evictions_before = bounded.evictions
            assert len(bounded) <= 4
            # Counters reconcile with batch fills: each call accounts
            # exactly its distinct ranges, split between hits and misses.
            lookups += len(set(map(tuple, batch)))
            assert bounded.hits + bounded.misses == lookups
        assert bounded.evictions > 0
        # Misses can only exceed the unbounded cache's (re-miss after
        # eviction), never the other way around.
        assert bounded.misses >= reference.misses
        assert bounded.evictions == bounded.misses - len(bounded)
