"""Tests for the bounded LRU profile cache (and the base cache's counters)."""

import numpy as np
import pytest

from repro.analysis.exact import AxisProfileCache
from repro.serving.cache import LRUProfileCache
from repro.transforms.haar import HaarTransform


@pytest.fixture
def transforms():
    return [HaarTransform(16)]


class TestCounters:
    def test_base_cache_counts_hits_and_misses(self, transforms):
        cache = AxisProfileCache(transforms)
        cache.profiles(0, [0, 2, 0], [8, 6, 8])  # 2 distinct ranges
        assert cache.misses == 2
        assert cache.hits == 0
        cache.profiles(0, [0], [8])
        assert cache.hits == 1
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_scalar_profile_counts(self, transforms):
        cache = AxisProfileCache(transforms)
        cache.profile(0, 0, 8)
        cache.profile(0, 0, 8)
        assert (cache.hits, cache.misses) == (1, 1)


class TestLRUProfileCache:
    def test_matches_unbounded_cache(self, transforms):
        rng = np.random.default_rng(0)
        pairs = np.sort(rng.integers(0, 17, size=(64, 2)), axis=1)
        bounded = LRUProfileCache(transforms, max_entries_per_axis=4)
        unbounded = AxisProfileCache(transforms)
        np.testing.assert_allclose(
            bounded.profiles(0, pairs[:, 0], pairs[:, 1]),
            unbounded.profiles(0, pairs[:, 0], pairs[:, 1]),
        )

    def test_bound_is_respected(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=3)
        for hi in range(1, 9):
            cache.profile(0, 0, hi)
        assert len(cache) == 3
        assert cache.evictions == 5

    def test_recency_protects_entries(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=2)
        cache.profile(0, 0, 4)
        cache.profile(0, 0, 8)
        cache.profile(0, 0, 4)   # refresh (0, 4)
        cache.profile(0, 0, 12)  # evicts (0, 8), not (0, 4)
        misses_before = cache.misses
        cache.profile(0, 0, 4)
        assert cache.misses == misses_before  # still cached

    def test_eviction_then_recompute_is_consistent(self, transforms):
        cache = LRUProfileCache(transforms, max_entries_per_axis=1)
        first = cache.profile(0, 0, 8)
        cache.profile(0, 0, 4)  # evicts (0, 8)
        assert cache.profile(0, 0, 8) == pytest.approx(first)

    def test_rejects_nonpositive_bound(self, transforms):
        with pytest.raises(ValueError):
            LRUProfileCache(transforms, max_entries_per_axis=0)
