"""Serving-test fixtures; the helpers live in ``_network_helpers``."""

import pytest

from _network_helpers import hard_deadline


@pytest.fixture
def deadline():
    """The :func:`hard_deadline` context manager, as a fixture."""
    return hard_deadline
