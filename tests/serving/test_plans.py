"""Tests for the columnar plan cache: reuse, eviction, invalidation."""

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, generate_census_table
from repro.errors import ServingError
from repro.serving.plans import PlanCache
from repro.serving.requests import QueryBatchRequest
from repro.serving.server import ReleaseServer

SPEC = BRAZIL.scaled(0.05)


@pytest.fixture(scope="module")
def census_result():
    table = generate_census_table(SPEC, 2_000, seed=0)
    return PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=1, materialize=False
    )


@pytest.fixture
def server(census_result):
    with ReleaseServer(max_linger_seconds=0.001) as srv:
        srv.register("census", census_result)
        yield srv


def _request(names, row=(0, 2)):
    return QueryBatchRequest(
        "census", {name: {"lo": [row[0]], "hi": [row[1]]} for name in names}
    )


class TestPlanReuse:
    def test_same_shape_hits_once_compiled(self, server):
        request = _request(("Age",))
        server.query_columnar(request)
        server.query_columnar(_request(("Age",), row=(5, 20)))
        cache = server.plan_cache
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_distinct_shapes_compile_separately(self, server):
        server.query_columnar(_request(("Age",)))
        server.query_columnar(_request(("Income",)))
        server.query_columnar(_request(("Age", "Income")))
        assert server.plan_cache.misses == 3
        assert len(server.plan_cache) == 3

    def test_attribute_order_normalizes_to_one_plan(self, server):
        a = QueryBatchRequest(
            "census", {"Age": {"lo": [0], "hi": [10]}, "Income": {"lo": [1], "hi": [2]}}
        )
        b = QueryBatchRequest(
            "census", {"Income": {"lo": [1], "hi": [2]}, "Age": {"lo": [0], "hi": [10]}}
        )
        assert a.plan_key == b.plan_key
        server.query_columnar(a)
        server.query_columnar(b)
        assert server.plan_cache.misses == 1
        assert server.plan_cache.hits == 1

    def test_plan_pins_engine_and_profile_state(self, server):
        server.query_columnar(_request(("Age",)))
        plan = server.plan_cache.plan(("census", ("Age",), None))
        assert plan.engine is server.engine("census")
        assert plan.axes == (0,)

    def test_failing_shape_never_poisons_the_cache(self, server):
        with pytest.raises(ServingError):
            server.query_columnar(_request(("Age",), row=(0, 10**6)))
        # Binding failed but the plan itself is valid and cached ...
        assert len(server.plan_cache) == 1
        # ... while an unknown release never enters the cache at all.
        bad = QueryBatchRequest("missing", {"Age": {"lo": [0], "hi": [1]}})
        with pytest.raises(Exception):
            server.query_columnar(bad)
        assert len(server.plan_cache) == 1


class TestEviction:
    def test_bound_held_under_shape_churn(self, census_result):
        names = ("Age", "Gender", "Occupation", "Income")
        with ReleaseServer(max_linger_seconds=0.001, max_plans=3) as srv:
            srv.register("census", census_result)
            # 15 distinct shapes (every non-empty subset), far over the bound.
            import itertools

            shapes = [
                combo
                for r in range(1, 5)
                for combo in itertools.combinations(names, r)
            ]
            for shape in shapes:
                srv.query_columnar(_request(shape))
            cache = srv.plan_cache
            assert len(cache) <= 3
            assert cache.evictions == len(shapes) - 3
            assert cache.misses == len(shapes)

    def test_evicted_plan_recompiles_identically(self, census_result):
        with ReleaseServer(max_linger_seconds=0.001, max_plans=1) as srv:
            srv.register("census", census_result)
            request = _request(("Age",), row=(3, 42))
            first = srv.query_columnar(request)
            srv.query_columnar(_request(("Income",)))  # evicts the Age plan
            assert srv.plan_cache.evictions == 1
            again = srv.query_columnar(request)  # recompiles
            assert srv.plan_cache.misses == 3
            assert np.array_equal(first.estimates, again.estimates)
            assert np.array_equal(first.noise_stds, again.noise_stds)
            assert np.array_equal(first.lowers, again.lowers)
            assert np.array_equal(first.uppers, again.uppers)

    def test_lru_order_keeps_recently_used(self, census_result):
        with ReleaseServer(max_linger_seconds=0.001, max_plans=2) as srv:
            srv.register("census", census_result)
            srv.query_columnar(_request(("Age",)))
            srv.query_columnar(_request(("Income",)))
            srv.query_columnar(_request(("Age",)))  # refresh Age
            srv.query_columnar(_request(("Gender",)))  # evicts Income, not Age
            srv.query_columnar(_request(("Age",)))
            # Age hit twice (pre- and post-eviction of Income); Gender's
            # arrival evicted Income, the least recently used, not Age.
            assert srv.plan_cache.hits == 2
            assert srv.plan_cache.evictions == 1
            assert srv.plan_cache.misses == 3


class TestInvalidation:
    def test_invalidate_drops_only_that_release(self, census_result):
        with ReleaseServer(max_linger_seconds=0.001) as srv:
            srv.register("census", census_result)
            srv.register("other", census_result)
            srv.query_columnar(_request(("Age",)))
            srv.query_columnar(
                QueryBatchRequest("other", {"Age": {"lo": [0], "hi": [10]}})
            )
            assert len(srv.plan_cache) == 2
            assert srv.plan_cache.invalidate("census") == 1
            assert len(srv.plan_cache) == 1
            # The surviving plan still answers.
            srv.query_columnar(
                QueryBatchRequest("other", {"Age": {"lo": [0], "hi": [10]}})
            )
            assert srv.plan_cache.hits == 1

    def test_counters_survive_clear(self, server):
        server.query_columnar(_request(("Age",)))
        server.plan_cache.clear()
        assert len(server.plan_cache) == 0
        assert server.plan_cache.misses == 1

    def test_rejects_nonpositive_bound(self, server):
        with pytest.raises(Exception):
            PlanCache(server.engine, max_plans=0)


class TestStats:
    def test_server_stats_surface_plan_counters(self, server):
        server.query_columnar(_request(("Age",)))
        server.query_columnar(_request(("Age",), row=(5, 9)))
        stats = server.stats()
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits == 1
        assert stats.plan_cache_hit_rate == 0.5
        assert stats.plan_cache_evictions == 0
        assert stats.columnar_rows == 2
        assert stats.requests == 2
