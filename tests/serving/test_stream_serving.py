"""Tests for serving live streams: time_range requests and auto-refresh."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.errors import ServingError
from repro.queries.engine import QueryEngine
from repro.serving.requests import QueryRequest
from repro.serving.server import ReleaseServer
from repro.streaming import StreamingPublisher

SPEC = BRAZIL.scaled(0.05)
EPOCHS = 4


@pytest.fixture
def stream_archive(tmp_path):
    path = tmp_path / "events.npz"
    publisher = StreamingPublisher(
        census_schema(SPEC),
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        seed=20100301,
        archive_path=path,
    )
    for epoch in range(EPOCHS):
        publisher.ingest(generate_census_table(SPEC, 200, seed=100 + epoch))
        publisher.advance_epoch()
    return path


@pytest.fixture
def flat_archive(tmp_path):
    from repro.io import save_result

    path = tmp_path / "flat.npz"
    result = PriveletPlusMechanism(sa_names="auto").publish(
        generate_census_table(SPEC, 200, seed=1), 1.0, seed=2, materialize=False
    )
    save_result(path, result)
    return path


class TestTimeRangeRequests:
    def test_window_request_matches_engine(self, stream_archive):
        from repro.io import load_result

        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            response = server.query(
                QueryRequest(
                    release="events", ranges={"Age": (10, 50)}, time_range=(1, 3)
                )
            )
            import dataclasses

            loaded = load_result(stream_archive)
            engine = QueryEngine(
                dataclasses.replace(loaded, release=loaded.release.window(1, 3))
            )
            request = QueryRequest(
                release="events", ranges={"Age": (10, 50)}, time_range=(1, 3)
            )
            answer = engine.answer_with_interval(request.to_query(engine.schema))
            assert response.estimate == pytest.approx(answer.estimate)
            assert response.noise_std == pytest.approx(answer.noise_std)

    def test_open_ended_window_means_latest(self, stream_archive):
        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            full = server.query(QueryRequest(release="events"))
            open_ended = server.query(
                QueryRequest(release="events", time_range=(0, None))
            )
            assert open_ended.estimate == pytest.approx(full.estimate)

    def test_batched_windows_group_separately(self, stream_archive):
        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            requests = [
                QueryRequest(
                    release="events",
                    ranges={"Age": (0, 40)},
                    time_range=(epoch, epoch + 1),
                )
                for epoch in range(EPOCHS)
            ] * 3
            responses = server.query_many(requests)
            # Per-epoch answers sum to the full-stream answer.
            total = server.query(
                QueryRequest(release="events", ranges={"Age": (0, 40)})
            )
            per_epoch = sum(r.estimate for r in responses[:EPOCHS])
            assert per_epoch == pytest.approx(total.estimate, abs=1e-6)

    def test_time_range_on_flat_release_is_bad_request(self, flat_archive):
        with ReleaseServer() as server:
            server.register_archive(flat_archive, name="flat")
            with pytest.raises(ServingError, match="not a stream") as excinfo:
                server.query(QueryRequest(release="flat", time_range=(0, 1)))
            assert excinfo.value.code == "bad-request"

    def test_window_past_closed_prefix_is_bad_request(self, stream_archive):
        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            with pytest.raises(ServingError) as excinfo:
                server.query(
                    QueryRequest(release="events", time_range=(0, EPOCHS + 5))
                )
            assert excinfo.value.code == "bad-request"

    def test_window_engines_are_lru_bounded(self, stream_archive):
        with ReleaseServer(window_engine_cache=2) as server:
            server.register_archive(stream_archive)
            for epoch in range(EPOCHS):
                server.query(
                    QueryRequest(release="events", time_range=(epoch, epoch + 1))
                )
            assert server.stats().engines_built <= 2


class TestLiveRefresh:
    def append_epoch(self, path, seed):
        publisher = StreamingPublisher.open(path)
        publisher.ingest(generate_census_table(SPEC, 200, seed=seed))
        publisher.advance_epoch()

    def test_server_sees_appended_epochs(self, stream_archive):
        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            before = server.query(QueryRequest(release="events", time_range=(0, None)))
            self.append_epoch(stream_archive, seed=100 + EPOCHS)
            fresh = server.query(
                QueryRequest(release="events", time_range=(EPOCHS, EPOCHS + 1))
            )
            after = server.query(QueryRequest(release="events", time_range=(0, None)))
            assert after.estimate == pytest.approx(
                before.estimate + fresh.estimate, abs=1e-6
            )

    def test_unchanged_archive_keeps_engine(self, stream_archive):
        with ReleaseServer() as server:
            server.register_archive(stream_archive)
            server.query(QueryRequest(release="events"))
            engine = server.engine("events")
            server.query(QueryRequest(release="events"))
            assert server.engine("events") is engine

    def test_watch_streams_off_requires_manual_refresh(self, stream_archive):
        with ReleaseServer(watch_streams=False) as server:
            server.register_archive(stream_archive)
            server.query(QueryRequest(release="events"))
            self.append_epoch(stream_archive, seed=100 + EPOCHS)
            with pytest.raises(ServingError, match="outside the closed prefix"):
                server.query(
                    QueryRequest(release="events", time_range=(EPOCHS, EPOCHS + 1))
                )
            assert server.refresh("events") is True
            response = server.query(
                QueryRequest(release="events", time_range=(EPOCHS, EPOCHS + 1))
            )
            assert np.isfinite(response.estimate)

    def test_static_archives_never_swap(self, flat_archive):
        with ReleaseServer() as server:
            server.register_archive(flat_archive, name="flat")
            server.query(QueryRequest(release="flat"))
            engine = server.engine("flat")
            # Touch the file: stale stat, but not a stream -> no swap.
            flat_archive.touch()
            server.query(QueryRequest(release="flat"))
            assert server.engine("flat") is engine


class TestServeCliTimeRange:
    def test_jsonl_loop_serves_windows(self, stream_archive, capsys, monkeypatch):
        lines = [
            json.dumps(
                {
                    "id": 1,
                    "release": "events",
                    "ranges": {"Age": [0, 30]},
                    "time_range": [1, 3],
                }
            ),
            json.dumps({"id": 2, "release": "events", "time_range": [0, None]}),
            json.dumps({"id": 3, "release": "events", "time_range": [9, 99]}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(stream_archive)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        responses = {json.loads(line)["id"]: json.loads(line) for line in out}
        assert responses[1]["ok"] is True
        assert responses[2]["ok"] is True
        assert responses[3]["ok"] is False
        assert responses[3]["code"] == "bad-request"
