"""Acceptance: a sharded stream serves over TCP ≡ its flat equivalent.

The facade publishes a Partition × TimeTree composition (one stream per
Age shard), which saves/loads through the v5 composition archive and is
served by the TCP fleet.  With ``T = 4`` epochs the full window's dyadic
cover is exactly the root node ``(2, 0)`` of every shard's tree, so a
*flat* one-level Partition built from those very node releases answers
every full-window query with the same noise draw — the nested release on
the wire must therefore be bit-identical to the flat one.  JSON's float
round-trip is exact, so the comparison really is bit for bit.
"""

import numpy as np
import pytest

from repro.core.compose import Partition, TimeTree
from repro.core.framework import PublishResult
from repro.core.publish import publish
from repro.data.census import BRAZIL, generate_census_table
from repro.io import load_result, save_result
from repro.serving.network import NetworkServer
from repro.serving.requests import QueryBatchRequest
from repro.serving.server import ReleaseServer

from _network_helpers import JsonLineClient, hard_deadline

SPEC = BRAZIL.scaled(0.05)
NAMES = ("Age", "Income")
EPOCHS = 4  # power of two: the full window's cover is the single root node
SHARDS = 2
BATCH = 24


def _random_ranges(schema, rng, count):
    ranges = {}
    for name in NAMES:
        size = schema[name].size
        lo = rng.integers(0, size, size=count)
        hi = rng.integers(lo + 1, size + 1)
        ranges[name] = {"lo": lo.tolist(), "hi": hi.tolist()}
    return ranges


@pytest.fixture(scope="module")
def table():
    return generate_census_table(SPEC, 1_500, seed=0)


@pytest.fixture(scope="module")
def nested(table, tmp_path_factory):
    """Publish via the facade, then round-trip through a v5 archive."""
    timestamps = np.arange(table.rows.shape[0]) % EPOCHS
    result = publish(
        table, 1.0, shard_by="Age", shards=SHARDS, stream=timestamps, seed=33
    )
    path = tmp_path_factory.mktemp("composed") / "sharded_stream.npz"
    save_result(path, result)
    return load_result(path)


@pytest.fixture(scope="module")
def flat(nested, table):
    """The equivalent flat composition: per-shard root-node leaves."""
    release = nested.release
    assert isinstance(release, Partition)
    parts = []
    for index in range(release.num_parts):
        tree = release.part_result(index).release
        assert isinstance(tree, TimeTree)
        assert tree.cover == ((2, 0),)
        parts.append(tree.node_result(2, 0))
    union = Partition(table.schema, release.attribute, release.bounds, parts)
    return PublishResult(
        release=union,
        epsilon=nested.epsilon,
        noise_magnitude=nested.noise_magnitude,
        generalized_sensitivity=nested.generalized_sensitivity,
        variance_bound=nested.variance_bound,
        details={"sharded": True, "flattened_from": "sharded_stream"},
    )


@pytest.fixture(scope="module")
def reference(nested, flat):
    """In-process ground truth serving both releases."""
    with ReleaseServer(max_linger_seconds=0.001) as server:
        server.register("nested", nested)
        server.register("flat", flat)
        yield server


@pytest.fixture(scope="module")
def fleet(nested, flat):
    """The TCP fleet under test, fed through shared-memory workers."""
    server = NetworkServer(workers=2, max_linger_seconds=0.001)
    server.register("nested", nested)
    server.register("flat", flat)
    with hard_deadline(120):
        address = server.start()
    yield address
    with hard_deadline(60):
        server.close()


class TestComposedServing:
    def test_nested_equals_flat_over_tcp(self, fleet, reference):
        schema = reference.engine("nested").schema
        ranges = _random_ranges(schema, np.random.default_rng(7), BATCH)
        with hard_deadline(90), JsonLineClient(fleet) as client:
            answers = {
                name: client.request(
                    {"op": "query_batch", "release": name, "ranges": ranges}
                )
                for name in ("nested", "flat")
            }
        assert answers["nested"]["ok"] and answers["flat"]["ok"]
        assert answers["nested"]["estimates"] == answers["flat"]["estimates"]
        assert answers["nested"]["noise_stds"] == answers["flat"]["noise_stds"]
        assert answers["nested"]["lowers"] == answers["flat"]["lowers"]
        assert answers["nested"]["uppers"] == answers["flat"]["uppers"]

    def test_full_window_time_range_is_the_flat_answer(self, fleet):
        """An explicit (0, EPOCHS) window serves the same root nodes."""
        with hard_deadline(90), JsonLineClient(fleet) as client:
            windowed = client.request(
                {
                    "op": "query_batch",
                    "release": "nested",
                    "ranges": _random_ranges_static(),
                    "time_range": [0, EPOCHS],
                }
            )
            flat = client.request(
                {
                    "op": "query_batch",
                    "release": "flat",
                    "ranges": _random_ranges_static(),
                }
            )
        assert windowed["ok"] and flat["ok"]
        assert windowed["estimates"] == flat["estimates"]
        assert windowed["noise_stds"] == flat["noise_stds"]

    def test_tcp_matches_in_process(self, fleet, reference):
        schema = reference.engine("nested").schema
        ranges = _random_ranges(schema, np.random.default_rng(11), BATCH)
        with hard_deadline(90), JsonLineClient(fleet) as client:
            wire = client.request(
                {"op": "query_batch", "release": "nested", "ranges": ranges}
            )
        truth = reference.query_columnar(QueryBatchRequest("nested", ranges))
        assert wire["ok"] is True and wire["count"] == BATCH
        assert wire["estimates"] == truth.estimates.tolist()
        assert wire["noise_stds"] == truth.noise_stds.tolist()

    def test_scalar_queries_agree(self, fleet):
        with hard_deadline(90), JsonLineClient(fleet) as client:
            boxes = [
                {"Age": [3, 40], "Income": [0, 9]},
                {"Age": [0, 101], "Income": [2, 5]},
                {"Age": [55, 56], "Income": [0, 16]},
            ]
            for box in boxes:
                nested = client.request(
                    {"op": "query", "release": "nested", "ranges": box}
                )
                flat = client.request(
                    {"op": "query", "release": "flat", "ranges": box}
                )
                assert nested["ok"] and flat["ok"]
                assert nested["estimate"] == flat["estimate"]
                assert nested["noise_std"] == flat["noise_std"]


def _random_ranges_static():
    """A fixed columnar batch (deterministic across the two requests)."""
    return {
        "Age": {"lo": [0, 10, 40], "hi": [101, 61, 42]},
        "Income": {"lo": [0, 3, 1], "hi": [16, 7, 2]},
    }


class TestComposedArchiveServing:
    def test_v5_archive_registers_lazily(self, table, tmp_path):
        timestamps = np.arange(table.rows.shape[0]) % EPOCHS
        result = publish(
            table,
            1.0,
            shard_by="Age",
            shards=SHARDS,
            stream=timestamps,
            seed=33,
        )
        path = tmp_path / "events.npz"
        save_result(path, result)
        ranges = _random_ranges_static()
        with ReleaseServer(max_linger_seconds=0.001) as server:
            server.register_archive(path)
            server.register("memory", result)
            served = server.query_columnar(QueryBatchRequest("events", ranges))
            truth = server.query_columnar(QueryBatchRequest("memory", ranges))
        np.testing.assert_array_equal(served.estimates, truth.estimates)
        np.testing.assert_array_equal(served.noise_stds, truth.noise_stds)
