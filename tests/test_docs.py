"""Doc-drift guard: the documentation's code actually runs.

Two gates:

* every fenced ```python block in README.md, docs/ARCHITECTURE.md, and
  docs/API.md executes against the real API (blocks run top to bottom
  in one shared namespace per file, inside a temporary directory, so
  snippets may write files and build on earlier snippets);
* docs/API.md mentions every name in ``repro.__all__`` — adding a
  public entry point without documenting it fails CI.

A block whose first non-blank line is ``# illustrative-only`` is
skipped (for intentionally partial fragments); none exist today.
"""

from __future__ import annotations

import pathlib
import re

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "docs" / "ARCHITECTURE.md",
    ROOT / "docs" / "API.md",
]
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: pathlib.Path) -> list[str]:
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_execute(path, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    blocks = _python_blocks(path)
    assert blocks, f"{path} contains no ```python blocks"
    namespace = {"__name__": f"doc_snippets_{path.stem}"}
    for index, source in enumerate(blocks):
        stripped = source.lstrip()
        if stripped.startswith("# illustrative-only"):
            continue
        try:
            exec(compile(source, f"{path.name}[block {index}]", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - reported with the block
            pytest.fail(
                f"{path.name} block {index} failed with "
                f"{type(exc).__name__}: {exc}\n---\n{source}"
            )


def test_api_doc_covers_public_surface():
    text = (ROOT / "docs" / "API.md").read_text()
    missing = [name for name in repro.__all__ if name not in text]
    assert missing == [], f"docs/API.md does not mention: {missing}"


def test_docs_are_linked_from_readme():
    readme = (ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/API.md" in readme
