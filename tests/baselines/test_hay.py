"""Unit tests for the Hay et al. hierarchical-consistency baseline."""

import numpy as np
import pytest

from repro.baselines.hay import HayHierarchicalMechanism
from repro.errors import PrivacyError


class TestBasics:
    def test_output_length(self, rng):
        counts = rng.integers(0, 30, size=13).astype(float)
        noisy = HayHierarchicalMechanism().publish_vector(counts, 1.0, seed=1)
        assert noisy.shape == (13,)

    def test_deterministic(self, rng):
        counts = rng.integers(0, 30, size=16).astype(float)
        a = HayHierarchicalMechanism().publish_vector(counts, 1.0, seed=2)
        b = HayHierarchicalMechanism().publish_vector(counts, 1.0, seed=2)
        np.testing.assert_array_equal(a, b)

    def test_high_epsilon_approaches_exact(self, rng):
        counts = rng.integers(0, 30, size=16).astype(float)
        noisy = HayHierarchicalMechanism().publish_vector(counts, 1e7, seed=3)
        np.testing.assert_allclose(noisy, counts, atol=1e-2)

    def test_rejects_bad_input(self):
        mech = HayHierarchicalMechanism()
        with pytest.raises(PrivacyError):
            mech.publish_vector(np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            mech.publish_vector(np.zeros(4), 0.0)
        with pytest.raises(PrivacyError):
            HayHierarchicalMechanism(arity=1)

    def test_noise_magnitude_scales_with_levels(self):
        mech = HayHierarchicalMechanism()
        assert mech.noise_magnitude(16, 1.0) == pytest.approx(2.0 * 5)  # 5 levels
        assert mech.noise_magnitude(2, 1.0) == pytest.approx(2.0 * 2)

    def test_arity_four(self, rng):
        counts = rng.integers(0, 30, size=16).astype(float)
        noisy = HayHierarchicalMechanism(arity=4).publish_vector(counts, 1e7, seed=4)
        np.testing.assert_allclose(noisy, counts, atol=1e-2)


class TestConsistencyAndUtility:
    def test_range_query_variance_beats_flat_laplace(self, rng):
        """For wide range queries, boosted hierarchical counts beat the

        naive per-cell Laplace of equal privacy (the point of Hay et al.)."""
        from repro.core.laplace import laplace_noise

        counts = rng.integers(0, 30, size=64).astype(float)
        epsilon = 1.0
        exact = counts.sum()
        mech = HayHierarchicalMechanism()

        hay_errors = []
        flat_errors = []
        for seed in range(600):
            hay_errors.append(mech.publish_vector(counts, epsilon, seed=seed).sum() - exact)
            flat = counts + laplace_noise(2.0 / epsilon, counts.shape, seed=10_000 + seed)
            flat_errors.append(flat.sum() - exact)
        assert np.var(hay_errors) < np.var(flat_errors)

    def test_comparable_to_privelet(self, rng):
        """§VIII: "Hay et al.'s approach and Privelet provide comparable

        utility guarantees" — check the measured variances are within an
        order of magnitude on a wide query."""
        from repro.core.privelet import publish_ordinal_vector

        counts = rng.integers(0, 30, size=64).astype(float)
        epsilon = 1.0
        exact = counts[5:50].sum()

        hay = HayHierarchicalMechanism()
        hay_errors, privelet_errors = [], []
        for seed in range(600):
            hay_errors.append(
                hay.publish_vector(counts, epsilon, seed=seed)[5:50].sum() - exact
            )
            privelet_errors.append(
                publish_ordinal_vector(counts, epsilon, seed=seed)[5:50].sum() - exact
            )
        ratio = np.var(hay_errors) / np.var(privelet_errors)
        assert 0.1 < ratio < 10.0

    def test_zero_noise_consistency_identity(self, rng):
        """With (almost) no noise the consistency passes must not distort
        the counts — they solve a least-squares problem whose optimum is
        the exact tree."""
        counts = rng.normal(size=32)
        noisy = HayHierarchicalMechanism().publish_vector(counts, 1e9, seed=5)
        np.testing.assert_allclose(noisy, counts, atol=1e-5)
