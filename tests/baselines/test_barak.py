"""Tests for the Barak et al. marginal-release baseline."""

import numpy as np
import pytest

from repro.baselines.barak import (
    BarakMechanism,
    downward_closure,
    inverse_walsh,
    walsh_coefficients,
)
from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import PrivacyError


def binary_schema(d):
    return Schema([OrdinalAttribute(f"B{i}", 2) for i in range(d)])


def random_binary_matrix(d, rng, scale=20):
    values = rng.integers(0, scale, size=(2,) * d).astype(float)
    return FrequencyMatrix(binary_schema(d), values)


class TestWalsh:
    def test_round_trip(self, rng):
        values = rng.normal(size=(2, 2, 2))
        np.testing.assert_allclose(
            inverse_walsh(walsh_coefficients(values)), values, atol=1e-10
        )

    def test_zero_coefficient_is_mean(self, rng):
        values = rng.normal(size=(2, 2))
        coefficients = walsh_coefficients(values)
        assert coefficients[0, 0] == pytest.approx(values.mean())

    def test_rejects_non_binary(self):
        with pytest.raises(PrivacyError):
            walsh_coefficients(np.zeros((2, 3)))

    def test_marginal_depends_only_on_inside_coefficients(self, rng):
        """The theory behind step 2: zeroing coefficients outside a
        subset's power set leaves that subset's marginal unchanged."""
        values = rng.integers(0, 9, size=(2, 2, 2)).astype(float)
        matrix = FrequencyMatrix(binary_schema(3), values)
        coefficients = walsh_coefficients(values)
        subset = (0, 2)
        keep = {(), (0,), (2,), (0, 2)}
        filtered = np.zeros_like(coefficients)
        for support in keep:
            alpha = tuple(1 if axis in support else 0 for axis in range(3))
            filtered[alpha] = coefficients[alpha]
        rebuilt = FrequencyMatrix(binary_schema(3), inverse_walsh(filtered))
        np.testing.assert_allclose(
            rebuilt.marginal(["B0", "B2"]), matrix.marginal(["B0", "B2"]), atol=1e-9
        )


class TestDownwardClosure:
    def test_contains_all_subsets(self):
        closure = downward_closure([(0, 1)], 3)
        assert set(closure) == {(), (0,), (1,), (0, 1)}

    def test_union_of_families(self):
        closure = downward_closure([(0,), (1, 2)], 3)
        assert set(closure) == {(), (0,), (1,), (2,), (1, 2)}

    def test_bounds_checked(self):
        with pytest.raises(PrivacyError):
            downward_closure([(5,)], 3)


class TestBarakMechanism:
    def test_nonnegative_output(self, rng):
        matrix = random_binary_matrix(3, rng)
        released = BarakMechanism([(0, 1), (1, 2)]).publish_matrix(matrix, 1.0, seed=1)
        assert released.values.min() >= -1e-9

    def test_marginals_consistent(self, rng):
        """Published marginals share consistent sub-marginals — the
        headline property of Barak et al."""
        matrix = random_binary_matrix(3, rng)
        marginals = BarakMechanism([(0, 1), (1, 2)]).publish_marginals(
            matrix, 1.0, seed=2
        )
        via_01 = marginals[(0, 1)].sum(axis=0)  # marginal on B1
        via_12 = marginals[(1, 2)].sum(axis=1)  # marginal on B1
        np.testing.assert_allclose(via_01, via_12, atol=1e-6)

    def test_high_epsilon_recovers_marginals(self, rng):
        matrix = random_binary_matrix(3, rng)
        marginals = BarakMechanism([(0, 1)]).publish_marginals(matrix, 1e7, seed=3)
        np.testing.assert_allclose(
            marginals[(0, 1)], matrix.marginal(["B0", "B1"]), atol=1e-2
        )

    def test_deterministic(self, rng):
        matrix = random_binary_matrix(2, rng)
        mech = BarakMechanism([(0, 1)])
        a = mech.publish_matrix(matrix, 1.0, seed=4)
        b = mech.publish_matrix(matrix, 1.0, seed=4)
        np.testing.assert_allclose(a.values, b.values)

    def test_rejects_non_binary_schema(self, rng):
        schema = Schema([OrdinalAttribute("A", 3), OrdinalAttribute("B", 2)])
        matrix = FrequencyMatrix(schema, np.zeros((3, 2)))
        with pytest.raises(PrivacyError):
            BarakMechanism([(0,)]).publish_matrix(matrix, 1.0)

    def test_requires_subsets(self):
        with pytest.raises(PrivacyError):
            BarakMechanism([])

    def test_from_table(self, rng):
        rows = rng.integers(0, 2, size=(500, 4))
        table = Table(binary_schema(4), rows)
        matrix = table.frequency_matrix()
        marginals = BarakMechanism([(0, 1), (2, 3)]).publish_marginals(
            matrix, 2.0, seed=5
        )
        # Each marginal's total approximates n (noise + LP slack).
        for marginal in marginals.values():
            assert marginal.sum() == pytest.approx(500, abs=120)


class TestFrequencyMarginal:
    def test_marginal_values(self, rng):
        values = rng.integers(0, 9, size=(2, 3, 4)).astype(float)
        schema = Schema(
            [OrdinalAttribute("A", 2), OrdinalAttribute("B", 3), OrdinalAttribute("C", 4)]
        )
        matrix = FrequencyMatrix(schema, values)
        np.testing.assert_allclose(matrix.marginal(["B"]), values.sum(axis=(0, 2)))
        np.testing.assert_allclose(matrix.marginal(["A", "C"]), values.sum(axis=1))

    def test_marginal_axis_order_follows_request(self, rng):
        values = rng.normal(size=(2, 3))
        schema = Schema([OrdinalAttribute("A", 2), OrdinalAttribute("B", 3)])
        matrix = FrequencyMatrix(schema, values)
        np.testing.assert_allclose(
            matrix.marginal(["B", "A"]), matrix.marginal(["A", "B"]).T
        )

    def test_full_marginal_is_copy(self, rng):
        values = rng.normal(size=(2, 2))
        schema = Schema([OrdinalAttribute("A", 2), OrdinalAttribute("B", 2)])
        matrix = FrequencyMatrix(schema, values)
        out = matrix.marginal(["A", "B"])
        out[0, 0] = 99
        assert matrix.values[0, 0] != 99

    def test_duplicates_rejected(self, rng):
        schema = Schema([OrdinalAttribute("A", 2)])
        matrix = FrequencyMatrix(schema, np.zeros(2))
        import pytest as _pytest

        from repro.errors import SchemaError

        with _pytest.raises(SchemaError):
            matrix.marginal(["A", "A"])
