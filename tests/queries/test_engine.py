"""Tests for the QueryEngine (answers + exact uncertainty)."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.errors import QueryError
from repro.queries.engine import QueryAnswer, QueryEngine, _gaussian_quantile
from repro.queries.predicate import interval_predicate
from repro.queries.query import RangeCountQuery
from repro.queries.workload import generate_workload


@pytest.fixture
def published(mixed_table):
    return PriveletPlusMechanism(sa_names=("X",)).publish(mixed_table, 1.0, seed=5)


@pytest.fixture
def published_coefficients(mixed_table):
    """The same publish as ``published`` without materializing ``M*``."""
    return PriveletPlusMechanism(sa_names=("X",)).publish(
        mixed_table, 1.0, seed=5, materialize=False
    )


class TestGaussianQuantile:
    @pytest.mark.parametrize("p,expected", [(0.5, 0.0), (0.975, 1.959964), (0.025, -1.959964)])
    def test_known_values(self, p, expected):
        assert _gaussian_quantile(p) == pytest.approx(expected, abs=1e-5)

    def test_symmetry(self):
        assert _gaussian_quantile(0.9) == pytest.approx(-_gaussian_quantile(0.1), abs=1e-9)

    def test_bounds(self):
        with pytest.raises(QueryError):
            _gaussian_quantile(0.0)


class TestEngine:
    def test_answers_match_oracle(self, published, mixed_table):
        from repro.queries.oracle import RangeSumOracle

        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 50, seed=6)
        np.testing.assert_allclose(
            engine.answer_all(queries),
            RangeSumOracle(published.matrix).answer_all(queries),
        )

    def test_variance_below_published_bound(self, published, mixed_table):
        engine = QueryEngine(published)
        for query in generate_workload(mixed_table.schema, 50, seed=7):
            assert engine.noise_variance(query) <= published.variance_bound * (1 + 1e-9)

    def test_basic_result_inferred(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=8)
        engine = QueryEngine(result)
        query = RangeCountQuery(mixed_table.schema)
        # Basic, full coverage: variance = m * 8 / eps^2 exactly.
        assert engine.noise_variance(query) == pytest.approx(
            8.0 * mixed_table.schema.num_cells
        )

    def test_unknown_configuration_rejected(self, published):
        from dataclasses import replace

        stripped = replace(published, details={})
        with pytest.raises(QueryError):
            QueryEngine(stripped)
        # Explicit override works.
        QueryEngine(stripped, sa_names=("X",))

    def test_interval_contains_estimate(self, published, mixed_table):
        engine = QueryEngine(published)
        query = generate_workload(mixed_table.schema, 1, seed=9)[0]
        answer = engine.answer_with_interval(query, confidence=0.9)
        assert isinstance(answer, QueryAnswer)
        assert answer.lower <= answer.estimate <= answer.upper
        assert answer.noise_std > 0
        assert answer.confidence == 0.9

    def test_interval_widens_with_confidence(self, published, mixed_table):
        engine = QueryEngine(published)
        query = generate_workload(mixed_table.schema, 1, seed=10)[0]
        narrow = engine.answer_with_interval(query, confidence=0.8)
        wide = engine.answer_with_interval(query, confidence=0.99)
        assert (wide.upper - wide.lower) > (narrow.upper - narrow.lower)

    def test_interval_coverage_monte_carlo(self, mixed_table):
        """Across repeated publishes, the 90% interval covers the exact
        answer ~90% of the time (within sampling slack)."""
        schema = mixed_table.schema
        exact_matrix = mixed_table.frequency_matrix()
        query = RangeCountQuery(
            schema, (interval_predicate(schema["X"], 1, 3),)
        )
        exact = query.evaluate(exact_matrix)
        mechanism = PriveletPlusMechanism(sa_names=("X",))
        covered = 0
        reps = 400
        for seed in range(reps):
            result = mechanism.publish_matrix(exact_matrix, 1.0, seed=seed)
            answer = QueryEngine(result).answer_with_interval(query, confidence=0.9)
            covered += answer.lower <= exact <= answer.upper
        assert covered / reps >= 0.85

    def test_confidence_bounds_validated(self, published, mixed_table):
        engine = QueryEngine(published)
        query = RangeCountQuery(mixed_table.schema)
        with pytest.raises(QueryError):
            engine.answer_with_interval(query, confidence=1.0)


class TestBatchAnswers:
    def test_matches_looped_single_queries(self, published, mixed_table):
        """The acceptance criterion: batch == loop, to float tolerance."""
        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 60, seed=13)
        batch = engine.answer_all_with_intervals(queries, confidence=0.9)
        assert len(batch) == 60
        for index, query in enumerate(queries):
            single = engine.answer_with_interval(query, confidence=0.9)
            assert batch.estimates[index] == pytest.approx(single.estimate)
            assert batch.noise_stds[index] == pytest.approx(single.noise_std)
            assert batch.lowers[index] == pytest.approx(single.lower)
            assert batch.uppers[index] == pytest.approx(single.upper)

    def test_stds_match_independent_variance_path(self, published, mixed_table):
        """Cross-check against the module-level exact-variance function
        (a separate code path from the engine's compiled cache)."""
        from repro.analysis.exact import query_noise_variance

        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 40, seed=14)
        batch = engine.answer_all_with_intervals(queries)
        for index, query in enumerate(queries):
            expected = query_noise_variance(
                engine._transform, query, published.noise_magnitude
            )
            assert batch.noise_stds[index] ** 2 == pytest.approx(expected)

    def test_getitem_and_iter(self, published, mixed_table):
        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 5, seed=15)
        batch = engine.answer_all_with_intervals(queries, confidence=0.8)
        answers = list(batch)
        assert len(answers) == 5
        assert isinstance(batch[2], QueryAnswer)
        assert batch[2] == answers[2]
        assert answers[0].confidence == 0.8

    def test_profile_cache_persists_across_calls(self, published, mixed_table):
        """Repeat traffic hits the per-engine memo: after a first batch,
        re-answering the same queries adds no new cache entries."""
        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 30, seed=16)
        first = engine.answer_all_with_intervals(queries)
        sizes = [len(cache) for cache in engine._profiles._caches]
        again = engine.answer_all_with_intervals(queries)
        assert [len(cache) for cache in engine._profiles._caches] == sizes
        np.testing.assert_allclose(again.noise_stds, first.noise_stds)

    def test_empty_batch(self, published):
        batch = QueryEngine(published).answer_all_with_intervals([])
        assert len(batch) == 0

    def test_confidence_validated(self, published, mixed_table):
        engine = QueryEngine(published)
        queries = generate_workload(mixed_table.schema, 2, seed=17)
        with pytest.raises(QueryError):
            engine.answer_all_with_intervals(queries, confidence=0.0)


class TestCoefficientBackend:
    """The engine must behave identically on a coefficient release."""

    def test_backend_inferred_from_release(self, published_coefficients):
        engine = QueryEngine(published_coefficients)
        assert engine.release.representation == "coefficients"
        assert "backend=coefficients" in repr(engine)

    def test_answers_match_dense_engine(
        self, published, published_coefficients, mixed_table
    ):
        queries = generate_workload(mixed_table.schema, 80, seed=21)
        dense = QueryEngine(published).answer_all(queries)
        coeff = QueryEngine(published_coefficients).answer_all(queries)
        np.testing.assert_allclose(coeff, dense, rtol=1e-9, atol=1e-8)

    def test_intervals_match_dense_engine(
        self, published, published_coefficients, mixed_table
    ):
        queries = generate_workload(mixed_table.schema, 30, seed=22)
        dense = QueryEngine(published).answer_all_with_intervals(queries)
        coeff = QueryEngine(published_coefficients).answer_all_with_intervals(queries)
        np.testing.assert_allclose(coeff.estimates, dense.estimates, rtol=1e-9, atol=1e-8)
        np.testing.assert_allclose(coeff.noise_stds, dense.noise_stds, rtol=1e-12)
        np.testing.assert_allclose(coeff.lowers, dense.lowers, rtol=1e-9, atol=1e-8)

    def test_marginals_match_dense_engine(self, published, published_coefficients):
        dense_values, dense_stds = QueryEngine(published).marginal_with_std(["X", "G"])
        coeff_values, coeff_stds = QueryEngine(published_coefficients).marginal_with_std(
            ["X", "G"]
        )
        np.testing.assert_allclose(coeff_values, dense_values, rtol=1e-9, atol=1e-8)
        np.testing.assert_allclose(coeff_stds, dense_stds, rtol=1e-12)

    def test_single_answer_path(self, published_coefficients, mixed_table):
        engine = QueryEngine(published_coefficients)
        query = generate_workload(mixed_table.schema, 1, seed=23)[0]
        assert engine.answer(query) == pytest.approx(
            engine.answer_all([query])[0]
        )

    def test_schema_mismatch_rejected(self, published_coefficients):
        from repro.data.attributes import OrdinalAttribute
        from repro.data.schema import Schema

        other = Schema([OrdinalAttribute("Z", 3)])
        with pytest.raises(QueryError):
            QueryEngine(published_coefficients).answer(RangeCountQuery(other))

    def test_conflicting_sa_override_rejected(self, published_coefficients):
        # The release knows its own SA set; a contradicting override
        # would pair answers with the wrong uncertainty model.
        with pytest.raises(QueryError, match="conflicts"):
            QueryEngine(published_coefficients, sa_names=("G",))
        # An agreeing override (any order) is accepted.
        engine = QueryEngine(published_coefficients, sa_names=("X",))
        assert engine.transform is published_coefficients.release.transform


class TestMarginals:
    def test_values_match_matrix_marginal(self, published):
        engine = QueryEngine(published)
        values, stds = engine.marginal_with_std(["X", "Y"])
        np.testing.assert_allclose(
            values, published.matrix.marginal(["X", "Y"])
        )
        assert stds.shape == values.shape
        assert np.all(stds > 0)

    def test_stds_match_query_variances(self, published, mixed_table):
        """Every marginal cell's std^2 equals the exact variance of the
        corresponding range-count query."""
        engine = QueryEngine(published)
        schema = mixed_table.schema
        _, stds = engine.marginal_with_std(["X"])
        for i in range(schema["X"].size):
            query = RangeCountQuery(
                schema, (interval_predicate(schema["X"], i, i),)
            )
            assert stds[i] ** 2 == pytest.approx(engine.noise_variance(query))

    def test_axis_order_follows_request(self, published):
        engine = QueryEngine(published)
        values_xy, stds_xy = engine.marginal_with_std(["X", "Y"])
        values_yx, stds_yx = engine.marginal_with_std(["Y", "X"])
        np.testing.assert_allclose(values_yx, values_xy.T)
        np.testing.assert_allclose(stds_yx, stds_xy.T)

    def test_duplicates_rejected(self, published):
        with pytest.raises(QueryError):
            QueryEngine(published).marginal_with_std(["X", "X"])
