"""Unit tests for RangeCountQuery."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.queries.predicate import Predicate, hierarchy_predicate, interval_predicate
from repro.queries.query import RangeCountQuery


class TestQueryConstruction:
    def test_no_predicates_selects_everything(self, mixed_schema, mixed_table):
        query = RangeCountQuery(mixed_schema)
        assert query.coverage() == 1.0
        matrix = mixed_table.frequency_matrix()
        assert query.evaluate(matrix) == mixed_table.num_rows

    def test_duplicate_attribute_rejected(self, mixed_schema):
        p1 = interval_predicate(mixed_schema["X"], 0, 1)
        p2 = interval_predicate(mixed_schema["X"], 2, 3)
        with pytest.raises(QueryError):
            RangeCountQuery(mixed_schema, (p1, p2))

    def test_oversized_predicate_rejected(self, mixed_schema):
        bad = Predicate("X", 0, 99)
        with pytest.raises(QueryError):
            RangeCountQuery(mixed_schema, (bad,))

    def test_unknown_attribute_rejected(self, mixed_schema):
        with pytest.raises(QueryError):
            RangeCountQuery(mixed_schema, (Predicate("Nope", 0, 1),))


class TestEvaluation:
    def test_box_defaults_to_full_ranges(self, mixed_schema):
        predicate = interval_predicate(mixed_schema["X"], 1, 2)
        query = RangeCountQuery(mixed_schema, (predicate,))
        assert query.box() == ((1, 3), (0, 6), (0, 4))

    def test_coverage(self, mixed_schema):
        predicate = interval_predicate(mixed_schema["X"], 0, 1)  # 2 of 5
        query = RangeCountQuery(mixed_schema, (predicate,))
        assert query.coverage() == pytest.approx(2.0 / 5.0)

    def test_matrix_vs_rows_agree(self, mixed_schema, mixed_table, rng):
        matrix = mixed_table.frequency_matrix()
        for _ in range(25):
            lo, hi = sorted(rng.integers(0, 5, size=2).tolist())
            node = int(rng.integers(1, mixed_schema["G"].hierarchy.num_nodes))
            query = RangeCountQuery(
                mixed_schema,
                (
                    interval_predicate(mixed_schema["X"], lo, hi),
                    hierarchy_predicate(mixed_schema["G"], node),
                ),
            )
            assert query.evaluate(matrix) == query.evaluate_rows(mixed_table.rows)

    def test_evaluate_shape_mismatch(self, mixed_schema):
        from repro.data.attributes import OrdinalAttribute
        from repro.data.frequency import FrequencyMatrix
        from repro.data.schema import Schema

        other = FrequencyMatrix.zeros(Schema([OrdinalAttribute("Z", 3)]))
        with pytest.raises(QueryError):
            RangeCountQuery(mixed_schema).evaluate(other)

    def test_evaluate_rows_shape_check(self, mixed_schema):
        with pytest.raises(QueryError):
            RangeCountQuery(mixed_schema).evaluate_rows(np.zeros((4, 2), dtype=int))

    def test_nominal_predicate_counts_subtree(self, mixed_schema, mixed_table):
        hierarchy = mixed_schema["G"].hierarchy
        group = hierarchy_predicate(mixed_schema["G"], 1)
        query = RangeCountQuery(mixed_schema, (group,))
        expected = int(np.isin(mixed_table.rows[:, 1], [0, 1, 2]).sum())
        assert query.evaluate(mixed_table.frequency_matrix()) == expected

    def test_repr(self, mixed_schema):
        assert "<all>" in repr(RangeCountQuery(mixed_schema))
