"""Unit tests for the prefix-sum range oracle."""

import numpy as np
import pytest

from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.queries.oracle import RangeSumOracle
from repro.queries.query import RangeCountQuery
from repro.queries.predicate import interval_predicate
from repro.queries.workload import generate_workload


def random_matrix(shape, rng):
    names = "ABCDEFG"
    schema = Schema([OrdinalAttribute(names[i], s) for i, s in enumerate(shape)])
    return FrequencyMatrix(schema, rng.normal(size=shape))


class TestBoxSums:
    @pytest.mark.parametrize("shape", [(7,), (4, 6), (3, 4, 5), (2, 3, 2, 4)])
    def test_matches_brute_force(self, shape, rng):
        matrix = random_matrix(shape, rng)
        oracle = RangeSumOracle(matrix)
        for _ in range(50):
            box = []
            for size in shape:
                lo, hi = sorted(rng.integers(0, size + 1, size=2).tolist())
                box.append((lo, hi))
            assert oracle.box_sum(box) == pytest.approx(
                matrix.range_sum(box), abs=1e-9
            )

    def test_empty_box(self, rng):
        matrix = random_matrix((5, 5), rng)
        oracle = RangeSumOracle(matrix)
        assert oracle.box_sum([(2, 2), (0, 5)]) == 0.0

    def test_full_box(self, rng):
        matrix = random_matrix((5, 5), rng)
        oracle = RangeSumOracle(matrix)
        assert oracle.box_sum([(0, 5), (0, 5)]) == pytest.approx(matrix.total)

    def test_bounds_validated(self, rng):
        oracle = RangeSumOracle(random_matrix((5,), rng))
        with pytest.raises(QueryError):
            oracle.box_sum([(0, 6)])
        with pytest.raises(QueryError):
            oracle.box_sum([(0, 5), (0, 5)])


class TestQueryAnswering:
    def test_answer_matches_evaluate(self, mixed_table, rng):
        matrix = mixed_table.frequency_matrix()
        oracle = RangeSumOracle(matrix)
        queries = generate_workload(mixed_table.schema, 100, seed=rng)
        for query in queries:
            assert oracle.answer(query) == pytest.approx(query.evaluate(matrix))

    def test_answer_all_matches_loop(self, mixed_table):
        matrix = mixed_table.frequency_matrix()
        oracle = RangeSumOracle(matrix)
        queries = generate_workload(mixed_table.schema, 200, seed=0)
        bulk = oracle.answer_all(queries)
        singles = np.array([oracle.answer(q) for q in queries])
        np.testing.assert_allclose(bulk, singles, atol=1e-9)

    def test_answer_all_empty(self, mixed_table):
        oracle = RangeSumOracle(mixed_table.frequency_matrix())
        assert oracle.answer_all([]).shape == (0,)

    def test_schema_mismatch_rejected(self, mixed_table, rng):
        oracle = RangeSumOracle(random_matrix((4, 4), rng))
        query = RangeCountQuery(mixed_table.schema)
        with pytest.raises(QueryError):
            oracle.answer(query)
        with pytest.raises(QueryError):
            oracle.answer_all([query])

    def test_single_predicate_1d(self, rng):
        schema = Schema([OrdinalAttribute("A", 12)])
        values = rng.integers(0, 9, size=12).astype(float)
        matrix = FrequencyMatrix(schema, values)
        oracle = RangeSumOracle(matrix)
        query = RangeCountQuery(schema, (interval_predicate(schema["A"], 3, 7),))
        assert oracle.answer(query) == pytest.approx(values[3:8].sum())
