"""Unit tests for the §VII-A workload generator and bucketing."""

import numpy as np
import pytest

from repro.data.census import BRAZIL, census_schema
from repro.errors import QueryError
from repro.queries.workload import Workload, generate_workload, quintile_buckets


class TestGeneration:
    def test_count_and_determinism(self, mixed_schema):
        a = generate_workload(mixed_schema, 50, seed=1)
        b = generate_workload(mixed_schema, 50, seed=1)
        assert len(a) == 50
        assert [q.box() for q in a] == [q.box() for q in b]

    def test_predicate_count_in_range(self, mixed_schema):
        queries = generate_workload(mixed_schema, 300, max_predicates=2, seed=2)
        counts = {q.num_predicates for q in queries}
        assert counts <= {1, 2}
        assert counts == {1, 2}  # both occur across 300 draws

    def test_max_predicates_capped_at_d(self, mixed_schema):
        queries = generate_workload(mixed_schema, 100, max_predicates=99, seed=3)
        assert max(q.num_predicates for q in queries) <= mixed_schema.dimensions

    def test_attributes_distinct_within_query(self, mixed_schema):
        for query in generate_workload(mixed_schema, 200, seed=4):
            names = [p.attribute_name for p in query.predicates]
            assert len(names) == len(set(names))

    def test_nominal_predicates_come_from_hierarchy(self, mixed_schema):
        for query in generate_workload(mixed_schema, 200, seed=5):
            for predicate in query.predicates:
                if predicate.attribute_name == "G":
                    assert predicate.node_id is not None
                    assert predicate.node_id >= 1

    def test_census_workload_paper_recipe(self):
        """On the 4-attribute census schema: 1..4 predicates per query."""
        schema = census_schema(BRAZIL.scaled(0.05))
        queries = generate_workload(schema, 500, max_predicates=4, seed=6)
        counts = np.array([q.num_predicates for q in queries])
        assert counts.min() >= 1
        assert counts.max() == 4
        # Roughly uniform over [1, 4].
        for k in range(1, 5):
            assert (counts == k).mean() > 0.1

    def test_rejects_bad_args(self, mixed_schema):
        with pytest.raises(ValueError):
            generate_workload(mixed_schema, 0)
        with pytest.raises(QueryError):
            generate_workload(mixed_schema, 5, max_predicates=0)


class TestWorkloadEvaluation:
    def test_exact_answers_and_selectivity(self, mixed_table):
        matrix = mixed_table.frequency_matrix()
        queries = generate_workload(mixed_table.schema, 100, seed=7)
        workload = Workload.evaluate(queries, matrix)
        assert len(workload) == 100
        # Selectivity = exact / n.
        np.testing.assert_allclose(
            workload.selectivities, workload.exact_answers / mixed_table.num_rows
        )
        assert np.all(workload.coverages > 0)
        assert np.all(workload.coverages <= 1)

    def test_empty_table_selectivity_zero(self, mixed_schema):
        from repro.data.table import Table

        matrix = Table(mixed_schema, []).frequency_matrix()
        queries = generate_workload(mixed_schema, 10, seed=8)
        workload = Workload.evaluate(queries, matrix)
        np.testing.assert_array_equal(workload.selectivities, 0.0)


class TestQuintileBuckets:
    def test_partition(self, rng):
        values = rng.normal(size=103)
        buckets = quintile_buckets(values, 5)
        indexes = np.concatenate(buckets)
        assert sorted(indexes.tolist()) == list(range(103))

    def test_ordering_between_buckets(self, rng):
        values = rng.normal(size=100)
        buckets = quintile_buckets(values, 5)
        maxima = [values[b].max() for b in buckets[:-1]]
        minima = [values[b].min() for b in buckets[1:]]
        for high, low in zip(maxima, minima):
            assert high <= low

    def test_bucket_sizes_balanced(self, rng):
        buckets = quintile_buckets(rng.normal(size=100), 5)
        assert [len(b) for b in buckets] == [20] * 5

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            quintile_buckets(np.array([]))
