"""Unit tests for query predicates."""

import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.errors import QueryError
from repro.queries.predicate import (
    Predicate,
    full_range_predicate,
    hierarchy_predicate,
    interval_predicate,
)


class TestIntervalPredicate:
    def test_inclusive_endpoints(self):
        attr = OrdinalAttribute("A", 10)
        predicate = interval_predicate(attr, 2, 5)
        assert (predicate.lo, predicate.hi) == (2, 6)  # stored half-open
        assert predicate.width == 4

    def test_single_value(self):
        predicate = interval_predicate(OrdinalAttribute("A", 10), 7, 7)
        assert predicate.width == 1
        assert predicate.covers(7)
        assert not predicate.covers(8)

    def test_bounds_checked(self):
        attr = OrdinalAttribute("A", 10)
        with pytest.raises(QueryError):
            interval_predicate(attr, -1, 3)
        with pytest.raises(QueryError):
            interval_predicate(attr, 3, 10)
        with pytest.raises(QueryError):
            interval_predicate(attr, 5, 3)

    def test_requires_ordinal(self, figure3_hierarchy):
        nominal = NominalAttribute("B", figure3_hierarchy)
        with pytest.raises(QueryError):
            interval_predicate(nominal, 0, 1)


class TestHierarchyPredicate:
    def test_internal_node_selects_subtree(self, figure3_hierarchy):
        attr = NominalAttribute("B", figure3_hierarchy)
        predicate = hierarchy_predicate(attr, 1)  # node "L"
        assert (predicate.lo, predicate.hi) == (0, 3)
        assert predicate.node_id == 1

    def test_leaf_selects_one_value(self, figure3_hierarchy):
        attr = NominalAttribute("B", figure3_hierarchy)
        leaf = figure3_hierarchy.find("v5")
        predicate = hierarchy_predicate(attr, leaf)
        assert predicate.width == 1

    def test_root_rejected(self, figure3_hierarchy):
        attr = NominalAttribute("B", figure3_hierarchy)
        with pytest.raises(QueryError):
            hierarchy_predicate(attr, 0)

    def test_bounds_checked(self, figure3_hierarchy):
        attr = NominalAttribute("B", figure3_hierarchy)
        with pytest.raises(QueryError):
            hierarchy_predicate(attr, 99)

    def test_requires_nominal(self):
        with pytest.raises(QueryError):
            hierarchy_predicate(OrdinalAttribute("A", 4), 1)


class TestPredicateBasics:
    def test_empty_interval_rejected(self):
        with pytest.raises(QueryError):
            Predicate("A", 3, 3)

    def test_negative_rejected(self):
        with pytest.raises(QueryError):
            Predicate("A", -1, 2)

    def test_full_range(self):
        predicate = full_range_predicate(OrdinalAttribute("A", 6))
        assert (predicate.lo, predicate.hi) == (0, 6)

    def test_repr(self, figure3_hierarchy):
        attr = NominalAttribute("B", figure3_hierarchy)
        assert "node=1" in repr(hierarchy_predicate(attr, 1))
