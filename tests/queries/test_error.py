"""Unit tests for the error metrics (§VII-A)."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.queries.error import (
    DEFAULT_SANITY_FRACTION,
    relative_error,
    sanity_bound,
    square_error,
)


class TestSquareError:
    def test_values(self):
        np.testing.assert_array_equal(
            square_error([3.0, -1.0], [1.0, 1.0]), [4.0, 4.0]
        )

    def test_zero_for_exact(self):
        np.testing.assert_array_equal(square_error([5.0], [5.0]), [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(QueryError):
            square_error([1.0, 2.0], [1.0])


class TestSanityBound:
    def test_paper_default(self):
        """s = 0.1% of tuples: 10M tuples -> 10 000."""
        assert DEFAULT_SANITY_FRACTION == 0.001
        assert sanity_bound(10_000_000) == 10_000.0

    def test_rejects_negative_tuples(self):
        with pytest.raises(QueryError):
            sanity_bound(-1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            sanity_bound(100, fraction=0.0)


class TestRelativeError:
    def test_large_exact_uses_act(self):
        errors = relative_error([110.0], [100.0], sanity=10.0)
        np.testing.assert_allclose(errors, [0.1])

    def test_small_exact_uses_sanity(self):
        """Queries with tiny answers are damped by s."""
        errors = relative_error([6.0], [1.0], sanity=10.0)
        np.testing.assert_allclose(errors, [0.5])

    def test_zero_exact_safe(self):
        errors = relative_error([5.0], [0.0], sanity=10.0)
        np.testing.assert_allclose(errors, [0.5])

    def test_shape_mismatch(self):
        with pytest.raises(QueryError):
            relative_error([1.0], [1.0, 2.0], sanity=1.0)

    def test_requires_positive_sanity(self):
        with pytest.raises(ValueError):
            relative_error([1.0], [1.0], sanity=0.0)
