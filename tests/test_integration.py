"""End-to-end integration tests across the full pipeline.

These exercise the complete paper workflow — table -> frequency matrix
-> mechanism -> noisy matrix -> workload evaluation -> error metrics —
at small scale, asserting the qualitative results of §VII.
"""

import numpy as np
import pytest

from repro import (
    BRAZIL,
    BasicMechanism,
    PriveletMechanism,
    PriveletPlusMechanism,
    RangeSumOracle,
    Workload,
    generate_census_table,
    generate_workload,
    relative_error,
    sanity_bound,
    select_sa,
    square_error,
)


@pytest.fixture(scope="module")
def census_setup():
    spec = BRAZIL.scaled(0.05)
    table = generate_census_table(spec, 20_000, seed=100)
    matrix = table.frequency_matrix()
    queries = generate_workload(table.schema, 2_000, max_predicates=4, seed=101)
    workload = Workload.evaluate(queries, matrix)
    return table, matrix, workload


class TestEndToEnd:
    def test_privelet_plus_beats_basic_on_wide_queries(self, census_setup):
        """The paper's headline: for high-coverage queries Privelet+ wins
        by orders of magnitude (Figures 6-7)."""
        table, matrix, workload = census_setup
        epsilon = 1.0
        sa = select_sa(table.schema)

        basic = BasicMechanism().publish_matrix(matrix, epsilon, seed=1)
        plus = PriveletPlusMechanism(sa_names=sa).publish_matrix(matrix, epsilon, seed=2)

        wide = workload.coverages > np.quantile(workload.coverages, 0.8)
        queries = [q for q, w in zip(workload.queries, wide) if w]
        exact = workload.exact_answers[wide]

        basic_err = square_error(RangeSumOracle(basic.matrix).answer_all(queries), exact)
        plus_err = square_error(RangeSumOracle(plus.matrix).answer_all(queries), exact)
        # The winning factor grows with m (the paper reports ~100x at
        # m > 1e8); at this tiny test scale (m ~ 4e5) a 3x margin is the
        # robust expectation.  The benchmarks measure the full-scale gap.
        assert plus_err.mean() < basic_err.mean() / 3

    def test_basic_wins_on_point_queries(self, census_setup):
        """Low-coverage queries: Basic's constant per-cell noise wins
        (the crossover of Figures 8-9)."""
        table, matrix, workload = census_setup
        epsilon = 1.0

        basic = BasicMechanism().publish_matrix(matrix, epsilon, seed=3)
        privelet = PriveletMechanism().publish_matrix(matrix, epsilon, seed=4)

        narrow = workload.coverages < np.quantile(workload.coverages, 0.05)
        queries = [q for q, w in zip(workload.queries, narrow) if w]
        exact = workload.exact_answers[narrow]

        basic_err = square_error(
            RangeSumOracle(basic.matrix).answer_all(queries), exact
        )
        privelet_err = square_error(
            RangeSumOracle(privelet.matrix).answer_all(queries), exact
        )
        assert basic_err.mean() < privelet_err.mean()

    def test_relative_error_crossover_in_selectivity(self, census_setup):
        """§VII-A: Privelet+'s relative error beats Basic's except at
        very low selectivities (the paper's crossover is ~1e-7 at
        n = 10M; proportionally higher at this test's tiny n).  Compare
        on the upper half of the selectivity distribution."""
        table, matrix, workload = census_setup
        epsilon = 1.25
        sa = select_sa(table.schema)
        sanity = sanity_bound(table.num_rows)

        # At this compressed scale (m ~ 4e5 vs the paper's 1e8) the
        # crossover sits higher up the distribution; take the queries
        # that are wide in both measures, and average over noise draws
        # (a single draw is too volatile for a strict comparison).
        selective = (
            workload.selectivities >= np.quantile(workload.selectivities, 0.5)
        ) & (workload.coverages >= np.quantile(workload.coverages, 0.8))
        queries = [q for q, keep in zip(workload.queries, selective) if keep]
        exact = workload.exact_answers[selective]

        plus_mean, basic_mean = 0.0, 0.0
        reps = 12
        for seed in range(reps):
            plus = PriveletPlusMechanism(sa_names=sa).publish_matrix(
                matrix, epsilon, seed=seed
            )
            basic = BasicMechanism().publish_matrix(matrix, epsilon, seed=500 + seed)
            plus_mean += relative_error(
                RangeSumOracle(plus.matrix).answer_all(queries), exact, sanity
            ).mean()
            basic_mean += relative_error(
                RangeSumOracle(basic.matrix).answer_all(queries), exact, sanity
            ).mean()
        assert plus_mean / reps < basic_mean / reps

    def test_empirical_variance_within_published_bound(self, census_setup):
        """Corollary 1 holds end to end on census data."""
        table, matrix, workload = census_setup
        epsilon = 1.0
        sa = select_sa(table.schema)
        mechanism = PriveletPlusMechanism(sa_names=sa)
        bound = mechanism.variance_bound(table.schema, epsilon)

        query = workload.queries[0]
        exact = workload.exact_answers[0]
        errors = []
        for seed in range(120):
            result = mechanism.publish_matrix(matrix, epsilon, seed=seed)
            errors.append(RangeSumOracle(result.matrix).answer(query) - exact)
        assert np.var(errors) <= bound

    def test_total_count_preserved_better_by_privelet(self, census_setup):
        """The noisy grand total: Privelet holds it nearly exact (heavy
        base-coefficient weight), Basic accumulates m cells of noise."""
        table, matrix, workload = census_setup
        epsilon = 1.0
        basic_err, privelet_err = [], []
        for seed in range(25):
            b = BasicMechanism().publish_matrix(matrix, epsilon, seed=seed)
            p = PriveletMechanism().publish_matrix(matrix, epsilon, seed=seed)
            basic_err.append(abs(b.matrix.total - table.num_rows))
            privelet_err.append(abs(p.matrix.total - table.num_rows))
        assert np.median(privelet_err) < np.median(basic_err)


class TestMechanismContract:
    def test_publish_equals_publish_matrix(self, census_setup):
        table, matrix, _ = census_setup
        a = BasicMechanism().publish(table, 1.0, seed=7)
        b = BasicMechanism().publish_matrix(matrix, 1.0, seed=7)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)

    def test_results_carry_consistent_accounting(self, census_setup):
        table, matrix, _ = census_setup
        for mechanism in (
            BasicMechanism(),
            PriveletMechanism(),
            PriveletPlusMechanism(sa_names="auto"),
        ):
            result = mechanism.publish_matrix(matrix, 0.75, seed=8)
            assert result.epsilon == 0.75
            assert result.noise_magnitude == pytest.approx(
                2.0 * result.generalized_sensitivity / 0.75
            )
            assert result.variance_bound > 0
