"""Documentation quality gates.

Two levels of enforcement:

* every public module/class/function anywhere in the library carries a
  docstring (the original deliverable-(e) gate);
* the **audited modules** — the flagship public surfaces named by the
  docs issue — additionally document every parameter by name, so an
  Args section cannot silently rot when a signature changes.
"""

import dataclasses
import importlib
import inspect
import pathlib
import pkgutil
import re

import pytest

import repro

#: Modules whose public docstrings must mention every parameter.
AUDITED_MODULES = [
    "repro.core.compose",
    "repro.core.release",
    "repro.core.sharding",
    "repro.queries.engine",
    "repro.planner",
    "repro.analysis.exact",
    "repro.serving.batching",
    "repro.serving.cache",
    "repro.serving.registry",
    "repro.serving.network",
    "repro.serving.requests",
    "repro.serving.server",
    "repro.serving.shm",
    "repro.serving.stats",
    "repro.streaming.publisher",
    "repro.streaming.release",
    "repro.streaming.tree",
]


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.getdoc(method) or "").strip():
                        undocumented.append(f"{name}.{method_name}")
    assert undocumented == [], f"{module_name}: undocumented public items {undocumented}"


def _documented_params(function, owner_doc: str) -> list[str]:
    """Parameter names the docstring (or the owning class's) must mention."""
    try:
        signature = inspect.signature(function)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return []
    doc = (inspect.getdoc(function) or "") + "\n" + owner_doc
    missing = []
    for name, parameter in signature.parameters.items():
        if name in {"self", "cls"} or name.startswith("_"):
            continue
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        if not re.search(rf"\b{re.escape(name)}\b", doc):
            missing.append(name)
    return missing


def test_every_public_name_has_an_executable_api_entry():
    """Each ``repro.__all__`` name appears in a ```python block of API.md.

    ``tests/test_docs.py`` already executes every fenced block and
    checks the page *mentions* each name; this gate is stricter — a
    public entry point must show up inside executable code, so its
    documented usage cannot rot without CI noticing.
    """
    api_doc = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    blocks = "\n".join(
        match.group(1)
        for match in re.finditer(r"```python\n(.*?)```", api_doc.read_text(), re.DOTALL)
    )
    missing = [
        name
        for name in repro.__all__
        if not re.search(rf"\b{re.escape(name)}\b", blocks)
    ]
    assert missing == [], (
        f"docs/API.md has no executable entry for: {missing}"
    )


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_audited_modules_document_every_parameter(module_name):
    """Flagship surfaces: each public callable names all its parameters."""
    module = importlib.import_module(module_name)
    violations = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj):
            for param in _documented_params(obj, ""):
                violations.append(f"{name}({param})")
        elif inspect.isclass(obj):
            class_doc = inspect.getdoc(obj) or ""
            # Dataclass __init__s are generated; their fields are
            # documented as attribute comments, not parameter sections.
            if not dataclasses.is_dataclass(obj):
                for param in _documented_params(obj.__init__, class_doc):
                    violations.append(f"{name}.__init__({param})")
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                for param in _documented_params(method, class_doc):
                    violations.append(f"{name}.{method_name}({param})")
    assert violations == [], (
        f"{module_name}: parameters missing from docstrings: {violations}"
    )
