"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
enforces it structurally so new code cannot regress it.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.getdoc(method) or "").strip():
                        undocumented.append(f"{name}.{method_name}")
    assert undocumented == [], f"{module_name}: undocumented public items {undocumented}"
