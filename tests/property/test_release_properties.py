"""Property tests for release representations and archive round trips.

Two invariants the coefficient-space refactor must hold everywhere:

* **Representation parity** — a mechanism published with the *same seed*
  draws the same Laplace noise whether or not it materializes, so the
  dense and coefficient releases answer every query identically (up to
  floating-point reassociation in the reconstruction).
* **Archive fidelity** — a result saved and reloaded in *either* archive
  format answers a randomized workload exactly as the in-memory result
  does, and pre-v2 (hand-built v1) archives still load.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.release import CoefficientRelease, DenseRelease
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import balanced_hierarchy, flat_hierarchy, two_level_hierarchy
from repro.data.schema import Schema
from repro.io import load_result, save_result, schema_to_dict
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload


@st.composite
def schema_matrix_sa(draw):
    """A small mixed schema, a counts matrix, and an SA subset."""
    d = draw(st.integers(1, 3))
    attributes = []
    for i in range(d):
        kind = draw(st.sampled_from(["ordinal", "flat", "two-level", "balanced"]))
        if kind == "ordinal":
            attributes.append(OrdinalAttribute(f"A{i}", draw(st.integers(1, 9))))
        elif kind == "flat":
            attributes.append(NominalAttribute(f"A{i}", flat_hierarchy(draw(st.integers(2, 6)))))
        elif kind == "two-level":
            groups = draw(st.lists(st.integers(2, 3), min_size=2, max_size=3))
            attributes.append(NominalAttribute(f"A{i}", two_level_hierarchy(groups)))
        else:
            attributes.append(NominalAttribute(f"A{i}", balanced_hierarchy(4, 2)))
    schema = Schema(attributes)
    sa = tuple(
        attr.name for attr in schema if draw(st.booleans())
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = FrequencyMatrix(
        schema, rng.integers(0, 30, size=schema.shape).astype(np.float64)
    )
    return schema, matrix, sa, seed


class TestRepresentationParity:
    """ISSUE satellite: same seed => bitwise-same draws, matching answers."""

    @settings(max_examples=25, deadline=None)
    @given(case=schema_matrix_sa())
    def test_dense_and_coefficient_answers_match(self, case):
        schema, matrix, sa, seed = case
        mechanism = PriveletPlusMechanism(sa_names=sa)
        dense = mechanism.publish_matrix(matrix, 1.0, seed=seed)
        coeff = mechanism.publish_matrix(matrix, 1.0, seed=seed, materialize=False)
        assert isinstance(dense.release, DenseRelease)
        assert isinstance(coeff.release, CoefficientRelease)

        # Same Laplace draws: the coefficient tensor reconstructs to
        # exactly the dense matrix (one inverse transform apart).
        np.testing.assert_allclose(
            coeff.matrix.values, dense.matrix.values, rtol=1e-9, atol=1e-9
        )

        queries = generate_workload(schema, 40, seed=seed + 1)
        dense_answers = QueryEngine(dense).answer_all(queries)
        coeff_answers = QueryEngine(coeff).answer_all(queries)
        scale = np.maximum(1.0, np.abs(dense_answers))
        np.testing.assert_array_less(
            np.abs(coeff_answers - dense_answers) / scale, 1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(case=schema_matrix_sa())
    def test_basic_parity(self, case):
        schema, matrix, _, seed = case
        dense = BasicMechanism().publish_matrix(matrix, 1.0, seed=seed)
        coeff = BasicMechanism().publish_matrix(
            matrix, 1.0, seed=seed, materialize=False
        )
        np.testing.assert_array_equal(
            coeff.release.coefficients, dense.matrix.values
        )
        queries = generate_workload(schema, 25, seed=seed + 1)
        np.testing.assert_allclose(
            QueryEngine(coeff).answer_all(queries),
            QueryEngine(dense).answer_all(queries),
            rtol=1e-9,
            atol=1e-8,
        )

    @settings(max_examples=20, deadline=None)
    @given(case=schema_matrix_sa())
    def test_degenerate_and_boundary_boxes_agree_exactly(self, case):
        """ISSUE satellite: empty boxes are an exact 0.0 on every backend.

        The raw ``answer_boxes`` path used to return 0.0 on the dense
        backend but a ~1e-16 float residue on the coefficient backend
        for ``lo == hi`` boxes; both must short-circuit to the exact
        zero, and non-empty boundary boxes must still agree.
        """
        schema, matrix, sa, seed = case
        mechanism = PriveletPlusMechanism(sa_names=sa)
        dense = mechanism.publish_matrix(matrix, 1.0, seed=seed)
        coeff = mechanism.publish_matrix(matrix, 1.0, seed=seed, materialize=False)
        rng = np.random.default_rng(seed + 3)
        shape = np.asarray(schema.shape, dtype=np.int64)
        n = 48
        lo_draw = rng.integers(0, shape + 1, size=(n, len(shape)))
        hi_draw = rng.integers(0, shape + 1, size=(n, len(shape)))
        lows = np.minimum(lo_draw, hi_draw)
        highs = np.maximum(lo_draw, hi_draw)
        # Force the interesting rows: degenerate at the domain edges and
        # mid-domain, the full domain, and empty on every axis at once.
        lows[0, 0] = highs[0, 0] = 0
        lows[1, 0] = highs[1, 0] = int(shape[0])
        lows[2, 0] = highs[2, 0] = int(shape[0]) // 2
        lows[3], highs[3] = 0, shape
        lows[4], highs[4] = shape, shape
        dense_answers = dense.release.answer_boxes(lows, highs)
        coeff_answers = coeff.release.answer_boxes(lows, highs)
        empty = np.any(lows == highs, axis=1)
        assert empty.any()
        assert np.all(dense_answers[empty] == 0.0)
        assert np.all(coeff_answers[empty] == 0.0)
        scale = np.maximum(1.0, np.abs(dense_answers))
        np.testing.assert_array_less(
            np.abs(coeff_answers - dense_answers) / scale, 1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(case=schema_matrix_sa())
    def test_uncertainty_is_representation_independent(self, case):
        schema, matrix, sa, seed = case
        mechanism = PriveletPlusMechanism(sa_names=sa)
        dense = mechanism.publish_matrix(matrix, 1.0, seed=seed)
        coeff = mechanism.publish_matrix(matrix, 1.0, seed=seed, materialize=False)
        queries = generate_workload(schema, 20, seed=seed + 2)
        np.testing.assert_allclose(
            QueryEngine(coeff).noise_variances(queries),
            QueryEngine(dense).noise_variances(queries),
            rtol=1e-12,
        )


class TestArchiveRoundTrips:
    """ISSUE satellite: either archive format preserves every answer."""

    @settings(max_examples=15, deadline=None)
    @given(case=schema_matrix_sa(), materialize=st.booleans())
    def test_round_trip_answers_identical(self, tmp_path_factory, case, materialize):
        schema, matrix, sa, seed = case
        mechanism = PriveletPlusMechanism(sa_names=sa)
        result = mechanism.publish_matrix(
            matrix, 1.0, seed=seed, materialize=materialize
        )
        path = tmp_path_factory.mktemp("archives") / "result.npz"
        save_result(path, result)
        loaded = load_result(path)
        assert loaded.representation == result.representation
        queries = generate_workload(schema, 30, seed=seed + 3)
        # Arrays are stored exactly, so reloaded answers are *equal*.
        np.testing.assert_array_equal(
            QueryEngine(loaded).answer_all(queries),
            QueryEngine(result).answer_all(queries),
        )
        if not materialize:
            assert tuple(loaded.details["sa"]) == tuple(
                result.release.sa_names
            )

    def test_hand_built_v1_archive_still_loads(self, tmp_path, rng):
        # A v1 archive as written before the v2 bump: "values" + header
        # with no "format"/"representation" keys at all.
        schema = Schema(
            [OrdinalAttribute("X", 5), NominalAttribute("G", flat_hierarchy(4))]
        )
        values = rng.normal(size=schema.shape)
        header = {
            "schema": schema_to_dict(schema),
            "epsilon": 1.0,
            "noise_magnitude": 2.0,
            "generalized_sensitivity": 1.0,
            "variance_bound": 160.0,
            "details": {"mechanism": "Basic"},
        }
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            values=values,
            header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )
        loaded = load_result(path)
        assert loaded.representation == "dense"
        np.testing.assert_array_equal(loaded.matrix.values, values)
        queries = generate_workload(schema, 10, seed=0)
        engine = QueryEngine(loaded)
        assert np.isfinite(engine.answer_all(queries)).all()

    def test_coefficient_archive_is_v2_and_smaller_state(self, mixed_table, tmp_path):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(
            mixed_table, 1.0, seed=9, materialize=False
        )
        path = tmp_path / "v2.npz"
        save_result(path, result)
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            assert header["format"] == 2
            assert header["representation"] == "coefficients"
            assert "values" not in archive
            assert "coefficients" in archive

    def test_v2_archive_missing_sa_rejected(self, mixed_table, tmp_path):
        from repro.errors import ReproError

        result = PriveletPlusMechanism(sa_names=()).publish(
            mixed_table, 1.0, seed=9, materialize=False
        )
        path = tmp_path / "v2.npz"
        save_result(path, result)
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            coefficients = archive["coefficients"]
        del header["sa"]
        broken = tmp_path / "broken.npz"
        np.savez_compressed(
            broken,
            coefficients=coefficients,
            header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )
        with pytest.raises(ReproError):
            load_result(broken)
