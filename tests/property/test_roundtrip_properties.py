"""Property-based tests for persistence, loaders, and post-processing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.postprocess import clamp_nonnegative, round_to_integers, sanitize
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import flat_hierarchy
from repro.data.loaders import load_table_csv, save_table_csv
from repro.data.schema import Schema
from repro.data.table import Table
from repro.io import schema_from_dict, schema_to_dict

finite_counts = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def small_schemas(draw):
    d = draw(st.integers(1, 3))
    attributes = []
    for i in range(d):
        if draw(st.booleans()):
            attributes.append(OrdinalAttribute(f"A{i}", draw(st.integers(1, 6))))
        else:
            attributes.append(
                NominalAttribute(f"A{i}", flat_hierarchy(draw(st.integers(2, 6))))
            )
    return Schema(attributes)


@st.composite
def schema_and_rows(draw):
    schema = draw(small_schemas())
    n = draw(st.integers(0, 30))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = (
        np.stack([rng.integers(0, a.size, n) for a in schema], axis=1)
        if n
        else np.empty((0, len(schema)), dtype=np.int64)
    )
    return schema, rows


class TestSchemaSerialization:
    @given(small_schemas())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_shape_and_kinds(self, schema):
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.shape == schema.shape
        assert rebuilt.names == schema.names
        assert [a.is_ordinal for a in rebuilt] == [a.is_ordinal for a in schema]


class TestCsvRoundTrip:
    @given(case=schema_and_rows())
    @settings(max_examples=40, deadline=None)
    def test_row_level_identity(self, tmp_path_factory, case):
        schema, rows = case
        table = Table(schema, rows)
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        save_table_csv(path, table)
        loaded = load_table_csv(path, schema)
        np.testing.assert_array_equal(loaded.rows, table.rows)

    @given(case=schema_and_rows())
    @settings(max_examples=25, deadline=None)
    def test_frequency_matrix_identity(self, tmp_path_factory, case):
        schema, rows = case
        table = Table(schema, rows)
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        save_table_csv(path, table, use_labels=False)
        loaded = load_table_csv(path, schema)
        np.testing.assert_array_equal(
            loaded.frequency_matrix().values, table.frequency_matrix().values
        )


class TestPostprocessProperties:
    @given(small_schemas(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_clamp_idempotent_and_nonnegative(self, schema, seed):
        rng = np.random.default_rng(seed)
        matrix = FrequencyMatrix(schema, rng.normal(size=schema.shape))
        once = clamp_nonnegative(matrix)
        assert once.values.min() >= 0
        np.testing.assert_array_equal(clamp_nonnegative(once).values, once.values)

    @given(small_schemas(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_idempotent(self, schema, seed):
        rng = np.random.default_rng(seed)
        matrix = FrequencyMatrix(schema, rng.normal(size=schema.shape) * 5)
        once = round_to_integers(matrix)
        np.testing.assert_array_equal(round_to_integers(once).values, once.values)

    @given(small_schemas(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_sanitize_never_increases_l1_to_truth_on_nonnegative_truth(
        self, schema, seed
    ):
        """Clamping moves noisy values toward any non-negative truth:
        projection onto a convex set containing the truth is contractive."""
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 5, size=schema.shape).astype(float)
        noisy = FrequencyMatrix(schema, truth + rng.normal(size=schema.shape))
        clamped = sanitize(noisy, nonnegative=True)
        before = np.abs(noisy.values - truth).sum()
        after = np.abs(clamped.values - truth).sum()
        assert after <= before + 1e-9
