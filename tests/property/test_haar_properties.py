"""Property-based tests for the Haar transform (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.transforms.haar import HaarTransform, haar_forward, haar_inverse
from repro.transforms.tree import haar_forward_reference

lengths = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def vectors(length_strategy=lengths):
    return length_strategy.flatmap(
        lambda n: hnp.arrays(np.float64, (n,), elements=finite)
    )


class TestHaarProperties:
    @given(vectors())
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, values):
        np.testing.assert_allclose(
            haar_inverse(haar_forward(values)), values, atol=1e-6
        )

    @given(vectors())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, values):
        np.testing.assert_allclose(
            haar_forward(values), haar_forward_reference(values), atol=1e-6
        )

    @given(vectors(), st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_homogeneity(self, values, scale):
        np.testing.assert_allclose(
            haar_forward(scale * values), scale * haar_forward(values), atol=1e-4
        )

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_domain_round_trip(self, length):
        rng = np.random.default_rng(length)
        values = rng.normal(size=length)
        transform = HaarTransform(length)
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-9
        )

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_sensitivity_bound_per_cell(self, length):
        """Each unit cell change has weighted L1 change exactly P(A)."""
        transform = HaarTransform(length)
        weights = transform.weight_vector()
        rng = np.random.default_rng(length)
        cell = int(rng.integers(0, length))
        bump = np.zeros(length)
        bump[cell] = 1.0
        weighted = float(np.abs(transform.forward(bump) * weights).sum())
        assert abs(weighted - transform.sensitivity_factor()) < 1e-9

    @given(vectors(st.sampled_from([2, 4, 8, 16])))
    @settings(max_examples=40, deadline=None)
    def test_parseval_like_energy(self, values):
        """The unnormalized Haar basis here satisfies: the inverse of any
        coefficient perturbation changes entries linearly — check the
        transform is an isomorphism by rank (via round trip of a basis)."""
        n = len(values)
        identity = np.eye(n)
        back = haar_inverse(haar_forward(identity))
        np.testing.assert_allclose(back, identity, atol=1e-8)
