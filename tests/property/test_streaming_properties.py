"""Property: a streaming tree is answer- and variance-identical to its leaves.

The satellite acceptance property: for any distribution of rows over
epochs and any window, the tree's window answer and exact variance equal
the flat per-epoch releases' (published at matched per-node ε with the
same derived seeds) summed over the window — i.e. merged internal nodes
change *what is touched*, never *what is answered*.  Windows are drawn
to land both on and between merge boundaries, and timestamps land both
inside epochs (epoch_length > 1) and on their edges.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact import query_boxes
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.data.table import Table
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher, cover_bound, epoch_seed

SCHEMA = Schema([OrdinalAttribute("v", 16), OrdinalAttribute("w", 8)])
EPSILON = 1.0
SEED = 20100301


def _tables(data: np.random.Generator, epochs: int, row_counts):
    tables = []
    for epoch in range(epochs):
        rows = np.stack(
            [
                data.integers(0, 16, size=row_counts[epoch]),
                data.integers(0, 8, size=row_counts[epoch]),
            ],
            axis=1,
        )
        tables.append(Table(SCHEMA, rows))
    return tables


@settings(max_examples=20, deadline=None)
@given(
    epochs=st.integers(min_value=1, max_value=9),
    row_counts=st.lists(
        st.integers(min_value=0, max_value=40), min_size=9, max_size=9
    ),
    window=st.tuples(
        st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)
    ),
    epoch_length=st.integers(min_value=1, max_value=3),
    data_seed=st.integers(min_value=0, max_value=2**16),
)
def test_stream_window_matches_flat_per_epoch_releases(
    epochs, row_counts, window, epoch_length, data_seed
):
    lo, hi = min(window) % (epochs + 1), max(window)
    hi = min(hi, epochs)
    lo = min(lo, hi)
    data = np.random.default_rng(data_seed)
    tables = _tables(data, epochs, row_counts)
    mechanism = PriveletPlusMechanism(sa_names="auto")

    publisher = StreamingPublisher(
        SCHEMA, mechanism, EPSILON, seed=SEED, epoch_length=epoch_length
    )
    for epoch, table in enumerate(tables):
        if table.num_rows:
            # Timestamps spread across the epoch's interior and edges.
            base = epoch * epoch_length
            stamps = base + (np.arange(table.num_rows) % epoch_length)
            publisher.ingest(table, stamps)
        publisher.advance_epoch()

    queries = generate_workload(SCHEMA, 12, seed=SEED + 1)
    lows, highs = query_boxes(queries, SCHEMA.shape)
    stream_release = publisher.release(lo, hi)
    assert stream_release.nodes_touched <= cover_bound(hi - lo)

    engine = QueryEngine(
        dataclasses.replace(publisher.result(), release=stream_release)
    )
    got_answers = engine.answer_all(queries)
    got_variances = engine.noise_variances(queries)

    # The flat equivalent: each epoch published on its own at the same
    # matched per-node epsilon with the same derived seed, summed.
    want_answers = np.zeros(len(queries))
    want_variances = np.zeros(len(queries))
    for epoch in range(lo, hi):
        flat = mechanism.publish(
            tables[epoch], EPSILON, seed=epoch_seed(SEED, epoch), materialize=False
        )
        flat_engine = QueryEngine(flat)
        want_answers += flat_engine.answer_all(queries)
        want_variances += flat_engine.noise_variances(queries)

    np.testing.assert_allclose(got_answers, want_answers, atol=1e-8)
    np.testing.assert_allclose(got_variances, want_variances, rtol=1e-10)

    # Single-epoch windows are bit-identical to the flat publish.
    if hi - lo == 1:
        flat = mechanism.publish(
            tables[lo], EPSILON, seed=epoch_seed(SEED, lo), materialize=False
        )
        np.testing.assert_array_equal(
            got_answers, QueryEngine(flat).answer_all(queries)
        )
