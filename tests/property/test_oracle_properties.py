"""Property-based tests: prefix-sum oracle vs brute-force summation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.queries.oracle import RangeSumOracle


@st.composite
def matrix_and_box(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    shape = tuple(draw(st.integers(1, 6)) for _ in range(d))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.integers(-5, 10, size=shape).astype(float)
    box = []
    for size in shape:
        lo = draw(st.integers(0, size))
        hi = draw(st.integers(lo, size))
        box.append((lo, hi))
    return shape, values, box


class TestOracleProperties:
    @given(matrix_and_box())
    @settings(max_examples=120, deadline=None)
    def test_box_sum_matches_slice_sum(self, case):
        shape, values, box = case
        schema = Schema(
            [OrdinalAttribute(f"A{i}", s) for i, s in enumerate(shape)]
        )
        matrix = FrequencyMatrix(schema, values)
        oracle = RangeSumOracle(matrix)
        slices = tuple(slice(lo, hi) for lo, hi in box)
        expected = float(values[slices].sum())
        assert abs(oracle.box_sum(box) - expected) < 1e-6

    @given(matrix_and_box())
    @settings(max_examples=60, deadline=None)
    def test_additivity_on_split_boxes(self, case):
        """Splitting a box along its first axis preserves the total."""
        shape, values, box = case
        schema = Schema(
            [OrdinalAttribute(f"A{i}", s) for i, s in enumerate(shape)]
        )
        oracle = RangeSumOracle(FrequencyMatrix(schema, values))
        (lo, hi), rest = box[0], box[1:]
        if hi - lo < 2:
            return
        mid = (lo + hi) // 2
        left = oracle.box_sum([(lo, mid)] + rest)
        right = oracle.box_sum([(mid, hi)] + rest)
        whole = oracle.box_sum(box)
        assert abs(left + right - whole) < 1e-6
