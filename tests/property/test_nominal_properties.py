"""Property-based tests for the nominal transform over random hierarchies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.hierarchy import Hierarchy, Node
from repro.transforms.nominal import NominalTransform
from repro.transforms.tree import nominal_forward_reference, nominal_reconstruct_entry


@st.composite
def random_hierarchies(draw, max_depth=3, max_fanout=4):
    """Random legal hierarchies: every internal node has 2..max_fanout
    children; subtrees stop at ``max_depth``."""
    counter = [0]

    def build(node: Node, depth: int):
        fanout = draw(st.integers(min_value=2, max_value=max_fanout))
        for _ in range(fanout):
            go_deeper = depth < max_depth and draw(st.booleans())
            if go_deeper:
                build(node.add(f"n{counter[0]}"), depth + 1)
            else:
                node.add(f"v{counter[0]}")
            counter[0] += 1

    root = Node("Any")
    build(root, 1)
    return Hierarchy(root)


class TestNominalProperties:
    @given(random_hierarchies(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, hierarchy, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=hierarchy.num_leaves)
        transform = NominalTransform(hierarchy)
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-8
        )

    @given(random_hierarchies(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, hierarchy, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=hierarchy.num_leaves)
        np.testing.assert_allclose(
            NominalTransform(hierarchy).forward(values),
            nominal_forward_reference(values, hierarchy),
            atol=1e-8,
        )

    @given(random_hierarchies(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_equation5_entrywise(self, hierarchy, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=hierarchy.num_leaves)
        coefficients = NominalTransform(hierarchy).forward(values)
        leaf = int(rng.integers(0, hierarchy.num_leaves))
        assert abs(
            nominal_reconstruct_entry(coefficients, hierarchy, leaf) - values[leaf]
        ) < 1e-8

    @given(random_hierarchies(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sibling_groups_sum_to_zero(self, hierarchy, seed):
        rng = np.random.default_rng(seed)
        coefficients = NominalTransform(hierarchy).forward(
            rng.normal(size=hierarchy.num_leaves)
        )
        for group in hierarchy.sibling_groups():
            assert abs(float(coefficients[group].sum())) < 1e-8

    @given(random_hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_sensitivity_bounded_by_height(self, hierarchy):
        """Lemma 4: weighted L1 change per unit cell change <= h, with
        equality for some leaf."""
        transform = NominalTransform(hierarchy)
        weights = transform.weight_vector()
        worst = 0.0
        for leaf in range(hierarchy.num_leaves):
            bump = np.zeros(hierarchy.num_leaves)
            bump[leaf] = 1.0
            weighted = float(np.abs(transform.forward(bump) * weights).sum())
            assert weighted <= hierarchy.height + 1e-9
            worst = max(worst, weighted)
        assert abs(worst - hierarchy.height) < 1e-9

    @given(random_hierarchies(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_refinement_idempotent_and_data_free(self, hierarchy, seed):
        rng = np.random.default_rng(seed)
        transform = NominalTransform(hierarchy)
        noisy = rng.normal(size=hierarchy.num_nodes)
        once = transform.refine(noisy)
        np.testing.assert_allclose(transform.refine(once), once, atol=1e-10)

    @given(random_hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_overcompleteness_count(self, hierarchy):
        transform = NominalTransform(hierarchy)
        assert (
            transform.output_length - transform.input_length
            == hierarchy.num_internal_nodes
        )
