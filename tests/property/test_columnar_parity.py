"""Property: the columnar batch path ≡ the scalar path, bit for bit.

The columnar fast path (QueryBatchRequest → PlanCache → answer_columnar)
must be a pure *representation* change: for every backend the serving
layer supports — dense, coefficient, sharded, stream — a columnar batch
must produce the exact float64 bit patterns (estimates, noise stds,
interval bounds) the per-request scalar path produces for the same
boxes, including full-domain boxes and time-windowed stream queries.
Degenerate rows (lo == hi), which the scalar Predicate cannot express,
are pinned against the engine-level ground truth instead: an empty box
answers exactly 0.0 with noise std exactly 0.0.
"""

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import publish_sharded
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.serving.requests import QueryBatchRequest, QueryRequest
from repro.serving.server import ReleaseServer
from repro.streaming import StreamingPublisher

SPEC = BRAZIL.scaled(0.05)
NAMES = ("Age", "Income")
BATCH = 64


def _random_ranges(schema, rng, count, *, degenerate=False):
    """Per-attribute lo/hi columns over NAMES (lo < hi unless degenerate)."""
    ranges = {}
    for name in NAMES:
        size = schema[name].size
        if degenerate:
            lo = rng.integers(0, size + 1, size=count)
            hi = lo
        else:
            lo = rng.integers(0, size, size=count)
            hi = rng.integers(lo + 1, size + 1)
        ranges[name] = {"lo": lo.tolist(), "hi": hi.tolist()}
    return ranges


def _scalar_requests(release, ranges, count, time_range=None):
    return [
        QueryRequest(
            release,
            {name: (spec["lo"][row], spec["hi"][row]) for name, spec in ranges.items()},
            time_range=time_range,
        )
        for row in range(count)
    ]


def _assert_bitwise_equal(batch_response, scalar_responses):
    for row, scalar in enumerate(scalar_responses):
        assert batch_response.estimates[row] == scalar.estimate
        assert batch_response.noise_stds[row] == scalar.noise_std
        assert batch_response.lowers[row] == scalar.lower
        assert batch_response.uppers[row] == scalar.upper


@pytest.fixture(scope="module")
def table():
    return generate_census_table(SPEC, 2_000, seed=0)


@pytest.fixture(scope="module")
def stream_archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "events.npz"
    publisher = StreamingPublisher(
        census_schema(SPEC),
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        seed=20100301,
        archive_path=path,
    )
    for epoch in range(4):
        publisher.ingest(generate_census_table(SPEC, 300, seed=100 + epoch))
        publisher.advance_epoch()
    return path


@pytest.fixture(scope="module")
def server(table, stream_archive):
    mechanism = PriveletPlusMechanism(sa_names="auto")
    with ReleaseServer(max_linger_seconds=0.001) as srv:
        srv.register(
            "dense", mechanism.publish(table, 1.0, seed=1, materialize=True)
        )
        srv.register(
            "coefficient", mechanism.publish(table, 1.0, seed=2, materialize=False)
        )
        srv.register(
            "sharded",
            publish_sharded(
                table, mechanism, 1.0, shard_by="Age", shards=3, seed=3
            ),
        )
        srv.register_archive(stream_archive, name="stream")
        yield srv


BACKENDS = ("dense", "coefficient", "sharded", "stream")


class TestColumnarScalarParity:
    @pytest.mark.parametrize("release", BACKENDS)
    def test_random_boxes_bit_for_bit(self, server, release):
        schema = server.engine(release).schema
        rng = np.random.default_rng(BACKENDS.index(release))
        ranges = _random_ranges(schema, rng, BATCH)
        batch = server.query_columnar(QueryBatchRequest(release, ranges))
        scalars = server.query_many(_scalar_requests(release, ranges, BATCH))
        _assert_bitwise_equal(batch, scalars)

    @pytest.mark.parametrize("release", BACKENDS)
    def test_full_domain_boxes_bit_for_bit(self, server, release):
        schema = server.engine(release).schema
        ranges = {
            name: {"lo": [0, 0], "hi": [schema[name].size] * 2} for name in NAMES
        }
        batch = server.query_columnar(QueryBatchRequest(release, ranges))
        scalars = server.query_many(_scalar_requests(release, ranges, 2))
        _assert_bitwise_equal(batch, scalars)
        # Both rows are the same box: identical answers, bit for bit.
        assert batch.estimates[0] == batch.estimates[1]
        assert batch.noise_stds[0] == batch.noise_stds[1]

    @pytest.mark.parametrize("release", BACKENDS)
    def test_degenerate_boxes_answer_exact_zero(self, server, release):
        schema = server.engine(release).schema
        rng = np.random.default_rng(7)
        ranges = _random_ranges(schema, rng, 16, degenerate=True)
        batch = server.query_columnar(QueryBatchRequest(release, ranges))
        assert np.array_equal(batch.estimates, np.zeros(16))
        assert np.array_equal(batch.noise_stds, np.zeros(16))
        assert np.array_equal(batch.lowers, np.zeros(16))
        assert np.array_equal(batch.uppers, np.zeros(16))

    def test_time_windowed_boxes_bit_for_bit(self, server):
        schema = server.engine("stream").schema
        rng = np.random.default_rng(11)
        for window in ((0, 2), (1, 4)):
            ranges = _random_ranges(schema, rng, 24)
            batch = server.query_columnar(
                QueryBatchRequest("stream", ranges, time_range=window)
            )
            scalars = server.query_many(
                _scalar_requests("stream", ranges, 24, time_range=window)
            )
            _assert_bitwise_equal(batch, scalars)

    @pytest.mark.parametrize("release", BACKENDS)
    def test_mixed_degenerate_and_proper_rows(self, server, release):
        """Degenerate rows ride in the same batch without perturbing others."""
        schema = server.engine(release).schema
        rng = np.random.default_rng(13)
        proper = _random_ranges(schema, rng, 8)
        ranges = {
            name: {
                "lo": proper[name]["lo"] + [0, 5],
                "hi": proper[name]["hi"] + [0, 5],
            }
            for name in NAMES
        }
        batch = server.query_columnar(QueryBatchRequest(release, ranges))
        scalars = server.query_many(_scalar_requests(release, proper, 8))
        _assert_bitwise_equal(batch, scalars)
        assert batch.estimates[8] == 0.0 and batch.estimates[9] == 0.0
        assert batch.noise_stds[8] == 0.0 and batch.noise_stds[9] == 0.0

    def test_engine_answer_columnar_matches_scalar_intervals(self, server):
        """Below the wire: answer_columnar ≡ answer_all_with_intervals."""
        from repro.analysis.exact import query_boxes
        from repro.queries.workload import generate_workload

        engine = server.engine("coefficient")
        queries = generate_workload(engine.schema, 50, seed=17)
        lows, highs = query_boxes(queries, engine.schema.shape)
        scalar = engine.answer_all_with_intervals(queries, 0.9)
        columnar = engine.answer_columnar(lows, highs, 0.9)
        assert np.array_equal(scalar.estimates, columnar.estimates)
        assert np.array_equal(scalar.noise_stds, columnar.noise_stds)
        assert np.array_equal(scalar.lowers, columnar.lowers)
        assert np.array_equal(scalar.uppers, columnar.uppers)
