"""Property-based tests for the HN transform over random mixed schemas."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sensitivity import empirical_generalized_sensitivity
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy, two_level_hierarchy
from repro.data.schema import Schema
from repro.transforms.multidim import HNTransform


@st.composite
def random_schemas(draw, max_dimensions=3):
    d = draw(st.integers(min_value=1, max_value=max_dimensions))
    attributes = []
    for i in range(d):
        kind = draw(st.sampled_from(["ordinal", "flat", "grouped"]))
        if kind == "ordinal":
            attributes.append(OrdinalAttribute(f"A{i}", draw(st.integers(1, 9))))
        elif kind == "flat":
            attributes.append(
                NominalAttribute(f"A{i}", flat_hierarchy(draw(st.integers(2, 7))))
            )
        else:
            groups = draw(
                st.lists(st.integers(2, 3), min_size=2, max_size=3)
            )
            attributes.append(NominalAttribute(f"A{i}", two_level_hierarchy(groups)))
    return Schema(attributes)


@st.composite
def schema_with_sa(draw):
    schema = draw(random_schemas())
    sa = tuple(
        name for name in schema.names if draw(st.booleans())
    )
    return schema, sa


class TestHNProperties:
    @given(random_schemas(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, schema, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=schema.shape)
        hn = HNTransform(schema)
        np.testing.assert_allclose(hn.inverse(hn.forward(values)), values, atol=1e-7)

    @given(schema_with_sa(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_with_sa(self, schema_sa, seed):
        schema, sa = schema_sa
        rng = np.random.default_rng(seed)
        values = rng.normal(size=schema.shape)
        hn = HNTransform(schema, sa_names=sa)
        np.testing.assert_allclose(hn.inverse(hn.forward(values)), values, atol=1e-7)

    @given(random_schemas(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, schema, seed):
        """Proposition 1 over random schemas."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=schema.shape)
        b = rng.normal(size=schema.shape)
        hn = HNTransform(schema)
        np.testing.assert_allclose(
            hn.forward(a + b), hn.forward(a) + hn.forward(b), atol=1e-7
        )

    @given(schema_with_sa())
    @settings(max_examples=25, deadline=None)
    def test_theorem2_exact(self, schema_sa):
        """Closed-form generalized sensitivity == measured, any schema/SA."""
        schema, sa = schema_sa
        if schema.num_cells > 600:
            return  # keep the exhaustive probe fast
        hn = HNTransform(schema, sa_names=sa)
        measured = empirical_generalized_sensitivity(hn)
        assert abs(measured - hn.generalized_sensitivity()) < 1e-7 * max(
            1.0, hn.generalized_sensitivity()
        )

    @given(random_schemas())
    @settings(max_examples=40, deadline=None)
    def test_output_shape_consistency(self, schema):
        hn = HNTransform(schema)
        assert len(hn.output_shape) == schema.dimensions
        for vector, length in zip(hn.weight_vectors(), hn.output_shape):
            assert len(vector) == length
            assert np.all(vector > 0)
