"""Unit tests for the privacy accountant."""

import pytest

from repro.core.accountant import PrivacyAccount
from repro.errors import PrivacyError, SchemaError


class TestAccount:
    def test_rho(self, mixed_schema):
        assert PrivacyAccount(mixed_schema).generalized_sensitivity == 36.0
        assert PrivacyAccount(mixed_schema, ("X",)).generalized_sensitivity == 9.0

    def test_lambda_epsilon_round_trip(self, mixed_schema):
        account = PrivacyAccount(mixed_schema, ("X",))
        magnitude = account.lambda_for_epsilon(0.5)
        assert magnitude == pytest.approx(36.0)
        assert account.epsilon_for_lambda(magnitude) == pytest.approx(0.5)

    def test_variance_bound_matches_mechanism(self, mixed_schema):
        from repro.core.privelet_plus import PriveletPlusMechanism

        account = PrivacyAccount(mixed_schema, ("X",))
        mech = PriveletPlusMechanism(sa_names=("X",))
        assert account.variance_bound(1.0) == pytest.approx(
            mech.variance_bound(mixed_schema, 1.0)
        )

    def test_per_coefficient_variance(self, mixed_schema):
        account = PrivacyAccount(mixed_schema)
        magnitude = account.lambda_for_epsilon(1.0)
        assert account.per_coefficient_variance(1.0, 2.0) == pytest.approx(
            2 * (magnitude / 2.0) ** 2
        )

    def test_summary_keys(self, mixed_schema):
        summary = PrivacyAccount(mixed_schema, ("X",)).summary(1.0)
        assert summary["sa"] == ("X",)
        assert summary["num_cells"] == mixed_schema.num_cells
        assert summary["lambda"] > 0

    def test_validates_sa(self, mixed_schema):
        with pytest.raises(SchemaError):
            PrivacyAccount(mixed_schema, ("Nope",))
        with pytest.raises(PrivacyError):
            PrivacyAccount(mixed_schema, ("X", "X"))

    def test_rejects_bad_epsilon(self, mixed_schema):
        with pytest.raises(ValueError):
            PrivacyAccount(mixed_schema).lambda_for_epsilon(0)
