"""Unit tests for Privelet+ (paper §VI-D / Figure 5)."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism, select_sa
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.census import BRAZIL, census_schema
from repro.data.hierarchy import two_level_hierarchy
from repro.data.schema import Schema
from repro.errors import SchemaError


class TestSaSelection:
    def test_paper_census_choice(self):
        """§VII-A: SA = {Age, Gender} for the census schema."""
        schema = census_schema(BRAZIL)
        assert select_sa(schema) == ("Age", "Gender")

    def test_auto_resolution(self, mixed_schema):
        mechanism = PriveletPlusMechanism(sa_names="auto")
        # X(5): P=4, H=2.5 -> 40 >= 5; G(6,h3): 36 >= 6; Y(4): 18 >= 4
        assert mechanism.sa_for(mixed_schema) == ("X", "G", "Y")

    def test_explicit_sa_validated(self, mixed_schema):
        mechanism = PriveletPlusMechanism(sa_names=("Nope",))
        with pytest.raises(SchemaError):
            mechanism.sa_for(mixed_schema)

    def test_names(self):
        assert PriveletPlusMechanism(sa_names="auto").name == "Privelet+"
        assert PriveletPlusMechanism(sa_names=()).name == "Privelet"
        assert "Age" in PriveletPlusMechanism(sa_names=("Age",)).name


class TestPublish:
    def test_shape_preserved(self, mixed_table):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(mixed_table, 1.0, seed=1)
        assert result.matrix.shape == mixed_table.schema.shape

    def test_accounting_matches_corollary1(self, mixed_table):
        """SA={X}: rho = P(G) P(Y) = 9; lambda = 2*9/eps."""
        result = PriveletPlusMechanism(sa_names=("X",)).publish(mixed_table, 1.0, seed=1)
        assert result.generalized_sensitivity == pytest.approx(9.0)
        assert result.noise_magnitude == pytest.approx(18.0)
        # variance bound: 2 lambda^2 * |X| * H(G) * H(Y) = 2*324*5*4*2
        assert result.variance_bound == pytest.approx(2 * 18.0**2 * 5 * 4 * 2)

    def test_sa_all_equals_basic_accounting(self, mixed_table):
        plus = PriveletPlusMechanism(sa_names=("X", "G", "Y"))
        result = plus.publish(mixed_table, 1.0, seed=1)
        assert result.noise_magnitude == pytest.approx(2.0)
        basic_bound = BasicMechanism().variance_bound(mixed_table.schema, 1.0)
        assert result.variance_bound == pytest.approx(basic_bound)

    def test_deterministic_with_seed(self, mixed_table):
        mech = PriveletPlusMechanism(sa_names=("X",))
        a = mech.publish(mixed_table, 1.0, seed=5)
        b = mech.publish(mixed_table, 1.0, seed=5)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)

    def test_details_record_sa(self, mixed_table):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(mixed_table, 1.0, seed=1)
        assert result.details["sa"] == ("X",)


class TestSplitEquivalence:
    """The vectorized implementation vs the literal Figure 5 loop."""

    def test_same_output_distribution_zero_noise(self, mixed_table):
        """At enormous epsilon both reduce to the exact matrix."""
        mech = PriveletPlusMechanism(sa_names=("X",))
        exact = mixed_table.frequency_matrix()
        vectorized = mech.publish_matrix(exact, 1e9, seed=1)
        split = mech.publish_matrix_by_splitting(exact, 1e9, seed=1)
        np.testing.assert_allclose(vectorized.matrix.values, exact.values, atol=1e-3)
        np.testing.assert_allclose(split.matrix.values, exact.values, atol=1e-3)

    def test_same_accounting(self, mixed_table):
        mech = PriveletPlusMechanism(sa_names=("X",))
        exact = mixed_table.frequency_matrix()
        vectorized = mech.publish_matrix(exact, 1.0, seed=1)
        split = mech.publish_matrix_by_splitting(exact, 1.0, seed=1)
        assert vectorized.noise_magnitude == pytest.approx(split.noise_magnitude)
        assert vectorized.generalized_sensitivity == pytest.approx(
            split.generalized_sensitivity
        )
        assert vectorized.variance_bound == pytest.approx(split.variance_bound)

    def test_split_with_all_sa(self, mixed_table):
        mech = PriveletPlusMechanism(sa_names=("X", "G", "Y"))
        exact = mixed_table.frequency_matrix()
        result = mech.publish_matrix_by_splitting(exact, 1.0, seed=2)
        assert result.matrix.shape == exact.shape
        assert result.noise_magnitude == pytest.approx(2.0)

    def test_split_statistics_match(self, mixed_table):
        """Across repeated runs, the per-cell noise variance of the two
        implementations agrees (same noise law)."""
        mech = PriveletPlusMechanism(sa_names=("X",))
        exact = mixed_table.frequency_matrix()
        reps = 60
        var_vec = np.zeros(exact.shape)
        var_split = np.zeros(exact.shape)
        for seed in range(reps):
            var_vec += (
                mech.publish_matrix(exact, 1.0, seed=seed).matrix.values - exact.values
            ) ** 2
            var_split += (
                mech.publish_matrix_by_splitting(exact, 1.0, seed=1000 + seed).matrix.values
                - exact.values
            ) ** 2
        # Compare the average variances over all cells (law of large numbers,
        # loose tolerance).
        assert var_vec.mean() / reps == pytest.approx(var_split.mean() / reps, rel=0.25)


class TestVarianceBound:
    def test_equation7(self):
        """Eq 7 on a concrete schema, computed by hand.

        Schema: A ordinal |A|=16 in SA; B nominal 8 leaves h=3.
        bound = 8/eps^2 * 16 * (3^2 * 4) = 8 * 16 * 36 = 4608 at eps=1.
        """
        schema = Schema(
            [
                OrdinalAttribute("A", 16),
                NominalAttribute("B", two_level_hierarchy([4, 4])),
            ]
        )
        mech = PriveletPlusMechanism(sa_names=("A",))
        assert mech.variance_bound(schema, 1.0) == pytest.approx(8 * 16 * 36)

    def test_good_sa_never_worse_than_both(self):
        """With the §VI-D rule, Eq 7 <= both Privelet's and Basic's bounds."""
        schema = census_schema(BRAZIL.scaled(0.1))
        eps = 1.0
        auto = PriveletPlusMechanism(sa_names="auto").variance_bound(schema, eps)
        privelet = PriveletPlusMechanism(sa_names=()).variance_bound(schema, eps)
        basic = BasicMechanism().variance_bound(schema, eps)
        assert auto <= privelet
        assert auto <= basic
