"""Tests for sharded releases (parallel composition of shard publishes)."""

import numpy as np
import pytest

from repro.analysis.exact import query_boxes
from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.release import convert_result
from repro.core.sharding import (
    ShardedRelease,
    ShardSlot,
    partition_table,
    publish_sharded,
    shard_bounds,
    shard_schema,
    shard_seeds,
)
from repro.data.census import BRAZIL, generate_census_table
from repro.errors import SchemaError, ServingError
from repro.queries.engine import QueryEngine
from repro.queries.predicate import Predicate
from repro.queries.query import RangeCountQuery
from repro.queries.workload import generate_workload

SHARDS = 4


@pytest.fixture(scope="module")
def table():
    return generate_census_table(BRAZIL.scaled(0.1), 8_000, seed=0)


@pytest.fixture(scope="module")
def sharded(table):
    return publish_sharded(
        table,
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        shard_by="Age",
        shards=SHARDS,
        seed=7,
        materialize=False,
    )


@pytest.fixture(scope="module")
def per_shard(table):
    """The same shards published one by one with the derived seeds."""
    bounds = shard_bounds(table.schema["Age"].size, SHARDS)
    tables = partition_table(table, "Age", bounds)
    mechanism = PriveletPlusMechanism(sa_names="auto")
    return bounds, [
        mechanism.publish(shard, 1.0, seed=seed, materialize=False)
        for shard, seed in zip(tables, shard_seeds(7, SHARDS))
    ]


def _clip(bounds, axis, lows, highs, index):
    """Clip a box batch to shard ``index``; returns (mask, lows, highs)."""
    lo_b, hi_b = bounds[index], bounds[index + 1]
    clip_lo = np.maximum(lows[:, axis], lo_b)
    clip_hi = np.minimum(highs[:, axis], hi_b)
    mask = clip_lo < clip_hi
    sub_lows = lows[mask].copy()
    sub_highs = highs[mask].copy()
    sub_lows[:, axis] = clip_lo[mask] - lo_b
    sub_highs[:, axis] = clip_hi[mask] - lo_b
    return mask, sub_lows, sub_highs


class TestPartitioning:
    def test_shard_bounds_are_balanced_and_cover(self):
        bounds = shard_bounds(101, 4)
        assert bounds[0] == 0 and bounds[-1] == 101
        widths = [hi - lo for lo, hi in zip(bounds, bounds[1:])]
        assert max(widths) - min(widths) <= 1

    def test_more_shards_than_values_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            shard_bounds(3, 5)

    def test_partition_is_disjoint_and_covers(self, table):
        bounds = shard_bounds(table.schema["Age"].size, SHARDS)
        shards = partition_table(table, "Age", bounds)
        assert sum(shard.num_rows for shard in shards) == table.num_rows
        axis = table.schema.index_of("Age")
        for index, shard in enumerate(shards):
            width = bounds[index + 1] - bounds[index]
            assert shard.schema["Age"].size == width
            if shard.num_rows:
                column = shard.rows[:, axis]
                assert column.min() >= 0 and column.max() < width

    def test_partition_frequencies_recompose(self, table):
        bounds = shard_bounds(table.schema["Age"].size, SHARDS)
        shards = partition_table(table, "Age", bounds)
        axis = table.schema.index_of("Age")
        stacked = np.concatenate(
            [shard.frequency_matrix().values for shard in shards], axis=axis
        )
        np.testing.assert_array_equal(
            stacked, table.frequency_matrix().values
        )

    def test_nominal_partition_attribute_rejected(self, table):
        with pytest.raises(SchemaError, match="ordinal"):
            partition_table(table, "Occupation", (0, 50, 100))

    def test_bad_bounds_rejected(self, table):
        size = table.schema["Age"].size
        for bounds in [(0, size), (1, size), (0, 50, 50, size), (0, size, 5)]:
            if bounds == (0, size):
                continue  # a single full-domain shard is legal
            with pytest.raises(SchemaError):
                partition_table(table, "Age", bounds)

    def test_shard_schema_restricts_one_attribute(self, table):
        sub = shard_schema(table.schema, "Age", 10, 30)
        assert sub["Age"].size == 20
        assert sub.names == table.schema.names
        assert sub.shape[1:] == table.schema.shape[1:]

    def test_shard_seeds_are_deterministic(self):
        first = shard_seeds(7, 3)
        second = shard_seeds(7, 3)
        for a, b in zip(first, second):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
        assert shard_seeds(None, 3) == [None, None, None]


class TestSameSeedParity:
    """ISSUE acceptance: sharded answers/variances == per-shard aggregation."""

    def test_estimates_match_per_shard_ground_truth(self, table, sharded, per_shard):
        bounds, results = per_shard
        queries = generate_workload(table.schema, 120, seed=3)
        lows, highs = query_boxes(queries, table.schema.shape)
        axis = table.schema.index_of("Age")
        expected = np.zeros(len(queries))
        for index, result in enumerate(results):
            mask, sub_lows, sub_highs = _clip(bounds, axis, lows, highs, index)
            expected[mask] += result.release.answer_boxes(sub_lows, sub_highs)
        actual = QueryEngine(sharded).answer_all(queries)
        np.testing.assert_allclose(actual, expected, rtol=1e-12, atol=1e-9)

    def test_noise_variances_sum_over_shards(self, table, sharded, per_shard):
        bounds, results = per_shard
        queries = generate_workload(table.schema, 80, seed=4)
        lows, highs = query_boxes(queries, table.schema.shape)
        axis = table.schema.index_of("Age")
        expected = np.zeros(len(queries))
        for index, result in enumerate(results):
            mask, sub_lows, sub_highs = _clip(bounds, axis, lows, highs, index)
            engine = QueryEngine(result)
            products = engine.profile_cache.box_profile_products(
                sub_lows, sub_highs
            )
            expected[mask] += 2.0 * result.noise_magnitude**2 * products
        actual = QueryEngine(sharded).noise_variances(queries)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_parallel_and_sequential_publish_agree(self, table):
        mechanism = PriveletPlusMechanism(sa_names="auto")
        kwargs = dict(shard_by="Age", shards=3, seed=11, materialize=False)
        parallel = publish_sharded(table, mechanism, 1.0, parallel=True, **kwargs)
        serial = publish_sharded(table, mechanism, 1.0, parallel=False, **kwargs)
        queries = generate_workload(table.schema, 40, seed=5)
        np.testing.assert_array_equal(
            QueryEngine(parallel).answer_all(queries),
            QueryEngine(serial).answer_all(queries),
        )

    def test_republishing_one_shard_reproduces_its_noise(self, table, per_shard):
        bounds, results = per_shard
        tables = partition_table(table, "Age", bounds)
        again = PriveletPlusMechanism(sa_names="auto").publish(
            tables[2], 1.0, seed=shard_seeds(7, SHARDS)[2], materialize=False
        )
        np.testing.assert_array_equal(
            again.release.coefficients, results[2].release.coefficients
        )


class TestShardedRelease:
    def test_routing_touches_only_intersecting_shards(self, table, per_shard):
        bounds, results = per_shard
        slots = [
            ShardSlot(
                sa_names=result.release.sa_names,
                noise_magnitude=result.noise_magnitude,
                load=lambda result=result: result,
            )
            for result in results
        ]
        release = ShardedRelease(table.schema, "Age", bounds, slots)
        assert release.shards_loaded == 0
        narrow = RangeCountQuery(
            table.schema, (Predicate("Age", bounds[1], bounds[2]),)
        )
        release.answer_box(narrow.box())
        assert release.shards_loaded == 1
        # Exact variances need no payload at all.
        lows, highs = query_boxes(
            generate_workload(table.schema, 10, seed=9), table.schema.shape
        )
        release.noise_variances_boxes(lows, highs)
        assert release.shards_loaded == 1

    def test_degenerate_boxes_are_exactly_zero(self, table, sharded):
        d = table.schema.dimensions
        lows = np.zeros((3, d), dtype=np.int64)
        highs = np.asarray([list(table.schema.shape)] * 3, dtype=np.int64)
        lows[0, 0] = highs[0, 0] = 40          # empty on the partition axis
        lows[1, 1] = highs[1, 1] = 1           # empty on another axis
        answers = sharded.release.answer_boxes(lows, highs)
        assert answers[0] == 0.0 and answers[1] == 0.0
        variances = sharded.release.noise_variances_boxes(lows, highs)
        assert variances[0] == 0.0 and variances[1] == 0.0
        assert answers[2] != 0.0 and variances[2] > 0.0

    def test_to_matrix_concatenates_shards(self, table, sharded, per_shard):
        bounds, results = per_shard
        axis = table.schema.index_of("Age")
        expected = np.concatenate(
            [result.release.to_matrix().values for result in results], axis=axis
        )
        np.testing.assert_allclose(
            sharded.release.to_matrix().values, expected, rtol=1e-9, atol=1e-9
        )

    def test_marginal_matches_materialized_matrix(self, sharded):
        marginal = sharded.release.marginal(["Gender", "Age"])
        dense = sharded.release.to_matrix().marginal(["Gender", "Age"])
        np.testing.assert_allclose(marginal, dense, rtol=1e-9, atol=1e-6)

    def test_marginal_with_std_has_positive_stds(self, sharded):
        values, stds = QueryEngine(sharded).marginal_with_std(["Gender"])
        assert values.shape == stds.shape == (2,)
        assert np.all(stds > 0)

    def test_convert_rewraps_every_shard(self, sharded):
        queries = generate_workload(sharded.release.schema, 20, seed=6)
        before = QueryEngine(sharded).answer_all(queries)
        dense = convert_result(sharded, "dense")
        assert dense.representation == "sharded"
        assert dense.release.shard_result(0).representation == "dense"
        np.testing.assert_allclose(
            QueryEngine(dense).answer_all(queries), before, rtol=1e-9, atol=1e-6
        )

    def test_sa_override_rejected(self, sharded):
        with pytest.raises(ServingError, match="own SA configuration"):
            QueryEngine(sharded, sa_names=("Age",))

    def test_wrong_shard_count_rejected(self, table, per_shard):
        bounds, results = per_shard
        with pytest.raises(SchemaError, match="expected"):
            ShardedRelease(table.schema, "Age", bounds, results[:-1])

    def test_non_result_shard_rejected(self, table, per_shard):
        bounds, results = per_shard
        with pytest.raises(SchemaError, match="ShardSlot"):
            ShardedRelease(
                table.schema, "Age", bounds, [object()] + list(results[1:])
            )

    def test_accounting_aggregates(self, sharded, per_shard):
        _, results = per_shard
        assert sharded.epsilon == 1.0
        assert sharded.noise_magnitude == max(r.noise_magnitude for r in results)
        assert sharded.variance_bound == pytest.approx(
            sum(r.variance_bound for r in results)
        )
        assert sharded.details["sharded"] is True
        assert sharded.details["shards"] == SHARDS

    def test_intervals_cover_like_any_backend(self, sharded):
        queries = generate_workload(sharded.release.schema, 30, seed=8)
        batch = QueryEngine(sharded).answer_all_with_intervals(queries, 0.9)
        assert np.all(batch.lowers <= batch.estimates)
        assert np.all(batch.estimates <= batch.uppers)
        assert np.all(batch.noise_stds > 0)


class TestOtherMechanisms:
    @pytest.mark.parametrize("mechanism", [BasicMechanism(), PriveletPlusMechanism(sa_names=())])
    def test_sharding_works_per_mechanism(self, table, mechanism):
        result = publish_sharded(
            table, mechanism, 1.0, shard_by="Age", shards=2, seed=3
        )
        queries = generate_workload(table.schema, 15, seed=2)
        batch = QueryEngine(result).answer_all_with_intervals(queries)
        assert np.all(np.isfinite(batch.estimates))
        assert np.all(batch.noise_stds > 0)
