"""Unit tests for repro.core.laplace."""

import numpy as np
import pytest

from repro.core.laplace import (
    epsilon_for_magnitude,
    laplace_log_density,
    laplace_noise,
    laplace_variance,
    magnitude_for_epsilon,
)
from repro.errors import PrivacyError


class TestNoise:
    def test_scalar_magnitude_shape(self, rng):
        noise = laplace_noise(2.0, (100,), seed=rng)
        assert noise.shape == (100,)

    def test_array_magnitude_shape_default(self, rng):
        magnitudes = np.array([[1.0, 2.0], [3.0, 4.0]])
        noise = laplace_noise(magnitudes, seed=rng)
        assert noise.shape == (2, 2)

    def test_zero_mean_and_variance(self):
        noise = laplace_noise(3.0, (200_000,), seed=42)
        assert abs(noise.mean()) < 0.05
        assert np.var(noise) == pytest.approx(laplace_variance(3.0), rel=0.05)

    def test_per_entry_magnitudes_respected(self):
        magnitudes = np.array([0.5, 5.0])
        draws = laplace_noise(magnitudes, (100_000, 2), seed=7)
        assert np.var(draws[:, 0]) == pytest.approx(laplace_variance(0.5), rel=0.05)
        assert np.var(draws[:, 1]) == pytest.approx(laplace_variance(5.0), rel=0.05)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(
            laplace_noise(1.0, (5,), seed=3), laplace_noise(1.0, (5,), seed=3)
        )

    def test_rejects_nonpositive_magnitude(self):
        with pytest.raises(PrivacyError):
            laplace_noise(0.0, (3,))
        with pytest.raises(PrivacyError):
            laplace_noise(np.array([1.0, -2.0]), (2,))
        with pytest.raises(PrivacyError):
            laplace_noise(np.inf, (2,))


class TestArithmetic:
    def test_variance_formula(self):
        assert laplace_variance(2.0) == 8.0

    def test_magnitude_epsilon_round_trip(self):
        magnitude = magnitude_for_epsilon(0.5, sensitivity=2.0)
        assert magnitude == 4.0
        assert epsilon_for_magnitude(magnitude, sensitivity=2.0) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            magnitude_for_epsilon(0.0, 2.0)
        with pytest.raises(ValueError):
            magnitude_for_epsilon(1.0, -1.0)

    def test_log_density_normalized(self):
        """Integrate the density numerically: should be ~1."""
        xs = np.linspace(-60, 60, 200_001)
        density = np.exp(laplace_log_density(xs, 2.0))
        integral = np.trapezoid(density, xs)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_log_density_ratio_bounded_by_shift(self):
        """|log p(x) - log p(x - delta)| <= |delta| / lambda — the core of

        the Laplace-mechanism privacy proof (Theorem 1)."""
        xs = np.linspace(-10, 10, 1001)
        delta = 1.7
        magnitude = 2.5
        gap = np.abs(
            laplace_log_density(xs, magnitude) - laplace_log_density(xs - delta, magnitude)
        )
        assert gap.max() <= delta / magnitude + 1e-12
