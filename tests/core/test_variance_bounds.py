"""Monte-Carlo verification of the utility lemmas (Lemma 3, Lemma 5,
Theorem 3, Corollary 1).

Each test publishes a small matrix many times, measures the empirical
noise variance of range-count answers, and checks it against the paper's
closed-form bound.  Tolerances are loose (sampling error) but the tests
are seeded, so they are deterministic.
"""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet import (
    PriveletMechanism,
    publish_nominal_vector,
    publish_ordinal_vector,
)
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import two_level_hierarchy
from repro.data.schema import Schema
from repro.analysis.variance import basic_bound, haar_bound, nominal_bound

REPS = 1500


def empirical_query_variance(publish, exact_answer_fn, reps=REPS):
    """Variance of (answer(noisy) - answer(exact)) over repetitions."""
    errors = np.array([publish(seed) - exact_answer_fn for seed in range(reps)])
    return float(np.var(errors))


class TestLemma3Haar:
    def test_full_range_query_within_equation4(self, rng):
        counts = rng.integers(0, 20, size=16).astype(float)
        epsilon = 1.0
        bound = haar_bound(16, epsilon)

        def publish(seed):
            return publish_ordinal_vector(counts, epsilon, seed=seed).sum()

        variance = empirical_query_variance(publish, counts.sum())
        assert variance <= bound * 1.15

    def test_prefix_query_within_equation4(self, rng):
        counts = rng.integers(0, 20, size=16).astype(float)
        epsilon = 1.0
        bound = haar_bound(16, epsilon)

        def publish(seed):
            return publish_ordinal_vector(counts, epsilon, seed=seed)[:11].sum()

        variance = empirical_query_variance(publish, counts[:11].sum())
        assert variance <= bound * 1.15

    def test_single_cell_query_much_smaller(self, rng):
        """Point queries touch all log m levels but with tiny per-level
        noise; the bound still holds with room to spare."""
        counts = rng.integers(0, 20, size=16).astype(float)
        epsilon = 1.0

        def publish(seed):
            return publish_ordinal_vector(counts, epsilon, seed=seed)[3]

        variance = empirical_query_variance(publish, counts[3])
        assert variance <= haar_bound(16, epsilon)


class TestLemma5Nominal:
    def test_subtree_query_within_equation6(self, figure3_hierarchy, figure3_vector):
        epsilon = 1.0
        bound = nominal_bound(figure3_hierarchy.height, epsilon)

        def publish(seed):
            noisy = publish_nominal_vector(
                figure3_vector, figure3_hierarchy, epsilon, seed=seed
            )
            return noisy[0:3].sum()  # the subtree of node L

        variance = empirical_query_variance(publish, figure3_vector[0:3].sum())
        assert variance <= bound * 1.15

    def test_leaf_query_within_equation6(self, figure3_hierarchy, figure3_vector):
        epsilon = 1.0
        bound = nominal_bound(figure3_hierarchy.height, epsilon)

        def publish(seed):
            noisy = publish_nominal_vector(
                figure3_vector, figure3_hierarchy, epsilon, seed=seed
            )
            return noisy[4]

        variance = empirical_query_variance(publish, figure3_vector[4])
        assert variance <= bound * 1.15

    def test_refinement_reduces_variance(self, figure3_hierarchy, figure3_vector):
        """Ablation: without mean subtraction, subtree-sum queries carry
        more noise (the Lemma 5 cancellation is lost)."""
        from repro.core.laplace import laplace_noise, magnitude_for_epsilon
        from repro.transforms.nominal import NominalTransform

        transform = NominalTransform(figure3_hierarchy)
        magnitude = magnitude_for_epsilon(1.0, 2.0 * transform.sensitivity_factor())
        coefficients = transform.forward(figure3_vector)
        exact = figure3_vector[0:3].sum()

        def answers(refine, seed):
            noisy = coefficients + laplace_noise(
                magnitude / transform.weight_vector(), seed=seed
            )
            return transform.inverse(noisy, refine=refine)[0:3].sum()

        refined = np.var([answers(True, s) - exact for s in range(REPS)])
        raw = np.var([answers(False, s) - exact for s in range(REPS)])
        assert refined < raw


class TestTheorem3MultiDim:
    def test_two_dim_query_within_bound(self, rng):
        schema = Schema(
            [
                OrdinalAttribute("A", 8),
                NominalAttribute("B", two_level_hierarchy([2, 2])),
            ]
        )
        exact = FrequencyMatrix(schema, rng.integers(0, 10, size=(8, 4)).astype(float))
        epsilon = 1.0
        mechanism = PriveletMechanism()
        bound = mechanism.variance_bound(schema, epsilon)
        exact_answer = exact.values[2:7, 0:2].sum()

        errors = []
        for seed in range(REPS):
            result = mechanism.publish_matrix(exact, epsilon, seed=seed)
            errors.append(result.matrix.values[2:7, 0:2].sum() - exact_answer)
        assert np.var(errors) <= bound * 1.15

    def test_privelet_plus_query_within_corollary1(self, rng):
        schema = Schema(
            [
                OrdinalAttribute("A", 4),
                OrdinalAttribute("B", 8),
            ]
        )
        exact = FrequencyMatrix(schema, rng.integers(0, 10, size=(4, 8)).astype(float))
        epsilon = 1.0
        mechanism = PriveletPlusMechanism(sa_names=("A",))
        bound = mechanism.variance_bound(schema, epsilon)
        exact_answer = exact.values[:, 1:6].sum()

        errors = []
        for seed in range(REPS):
            result = mechanism.publish_matrix(exact, epsilon, seed=seed)
            errors.append(result.matrix.values[:, 1:6].sum() - exact_answer)
        assert np.var(errors) <= bound * 1.15


class TestBasicVariance:
    def test_full_query_matches_8m(self, rng):
        schema = Schema([OrdinalAttribute("A", 32)])
        exact = FrequencyMatrix(schema, rng.integers(0, 10, size=32).astype(float))
        epsilon = 1.0
        errors = []
        for seed in range(REPS):
            result = BasicMechanism().publish_matrix(exact, epsilon, seed=seed)
            errors.append(result.matrix.values.sum() - exact.values.sum())
        # Full-coverage query: variance ~ exactly 8m/eps^2.
        assert np.var(errors) == pytest.approx(basic_bound(32, epsilon), rel=0.15)

    def test_crossover_large_query_favours_privelet(self, rng):
        """The headline claim: for wide queries Privelet beats Basic."""
        schema = Schema([OrdinalAttribute("A", 256)])
        exact = FrequencyMatrix(schema, rng.integers(0, 10, size=256).astype(float))
        epsilon = 1.0
        exact_answer = exact.values.sum()

        basic_errors, privelet_errors = [], []
        for seed in range(400):
            b = BasicMechanism().publish_matrix(exact, epsilon, seed=seed)
            p = PriveletMechanism().publish_matrix(exact, epsilon, seed=seed)
            basic_errors.append(b.matrix.values.sum() - exact_answer)
            privelet_errors.append(p.matrix.values.sum() - exact_answer)
        assert np.var(privelet_errors) < np.var(basic_errors)
