"""Tests for the release representations (dense vs coefficient-space)."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet import publish_nominal_release, publish_ordinal_release
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.release import (
    REPRESENTATIONS,
    CoefficientRelease,
    DenseRelease,
    convert_result,
    infer_sa_names,
)
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import two_level_hierarchy
from repro.errors import PrivacyError, QueryError, TransformError
from repro.queries.workload import generate_workload


@pytest.fixture
def mixed_matrix(mixed_schema, rng):
    values = rng.integers(0, 25, size=mixed_schema.shape).astype(np.float64)
    return FrequencyMatrix(mixed_schema, values)


def random_boxes(schema, count, rng):
    lows = np.empty((count, schema.dimensions), dtype=np.int64)
    highs = np.empty((count, schema.dimensions), dtype=np.int64)
    for axis, size in enumerate(schema.shape):
        pairs = np.sort(rng.integers(0, size + 1, size=(count, 2)), axis=1)
        lows[:, axis], highs[:, axis] = pairs[:, 0], pairs[:, 1]
    return lows, highs


class TestDenseRelease:
    def test_answers_match_matrix_slices(self, mixed_matrix, rng):
        release = DenseRelease(mixed_matrix)
        lows, highs = random_boxes(mixed_matrix.schema, 30, rng)
        expected = [
            mixed_matrix.range_sum(list(zip(lo, hi))) for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(release.answer_boxes(lows, highs), expected)

    def test_oracle_is_lazy(self, mixed_matrix):
        release = DenseRelease(mixed_matrix)
        base = release.nbytes()
        assert base == mixed_matrix.values.nbytes
        release.answer_box([(0, 2), (0, 6), (0, 1)])
        assert release.nbytes() > base  # prefix array now built

    def test_to_matrix_is_identity(self, mixed_matrix):
        assert DenseRelease(mixed_matrix).to_matrix() is mixed_matrix

    def test_marginal_delegates(self, mixed_matrix):
        release = DenseRelease(mixed_matrix)
        np.testing.assert_allclose(
            release.marginal(["X", "Y"]), mixed_matrix.marginal(["X", "Y"])
        )

    def test_rejects_non_matrix(self):
        with pytest.raises(QueryError):
            DenseRelease(np.zeros((2, 2)))


class TestCoefficientRelease:
    @pytest.mark.parametrize("sa", [(), ("X",), ("G",), ("X", "G", "Y")])
    def test_answers_match_dense_reconstruction(self, mixed_matrix, rng, sa):
        release = CoefficientRelease.from_matrix(mixed_matrix, sa)
        dense = DenseRelease(release.to_matrix())
        lows, highs = random_boxes(mixed_matrix.schema, 60, rng)
        np.testing.assert_allclose(
            release.answer_boxes(lows, highs),
            dense.answer_boxes(lows, highs),
            rtol=1e-9,
            atol=1e-8,
        )

    def test_from_matrix_round_trips_exactly(self, mixed_matrix):
        # inverse(forward(x)) = x: conversion preserves the dense matrix.
        release = CoefficientRelease.from_matrix(mixed_matrix, ("X",))
        np.testing.assert_allclose(
            release.to_matrix().values, mixed_matrix.values, atol=1e-9
        )

    def test_marginal_matches_dense(self, mixed_matrix):
        release = CoefficientRelease.from_matrix(mixed_matrix, ("X",))
        for names in (["X"], ["G", "Y"], ["Y", "X"], ["X", "G", "Y"]):
            np.testing.assert_allclose(
                release.marginal(names),
                mixed_matrix.marginal(names),
                rtol=1e-9,
                atol=1e-8,
            )

    def test_sa_names_in_schema_order(self, mixed_schema):
        coefficients = np.zeros(
            CoefficientRelease.from_matrix(
                FrequencyMatrix.zeros(mixed_schema), ("Y", "X")
            ).coefficients.shape
        )
        release = CoefficientRelease(mixed_schema, ("Y", "X"), coefficients)
        assert release.sa_names == ("X", "Y")

    def test_shape_checked(self, mixed_schema):
        with pytest.raises(TransformError):
            CoefficientRelease(mixed_schema, (), np.zeros((2, 2, 2)))

    def test_box_bounds_checked(self, mixed_matrix):
        release = CoefficientRelease.from_matrix(mixed_matrix, ())
        lows = np.asarray([[0, 0, 0]])
        highs = np.asarray([[99, 1, 1]])
        with pytest.raises(QueryError):
            release.answer_boxes(lows, highs)

    def test_empty_batch(self, mixed_matrix):
        release = CoefficientRelease.from_matrix(mixed_matrix, ())
        assert release.answer_boxes(
            np.empty((0, 3), dtype=np.int64), np.empty((0, 3), dtype=np.int64)
        ).shape == (0,)

    def test_chunking_consistent(self, mixed_matrix, rng, monkeypatch):
        # Force tiny chunks; answers must not depend on the chunk size.
        import repro.core.release as release_module

        release = CoefficientRelease.from_matrix(mixed_matrix, ("X",))
        lows, highs = random_boxes(mixed_matrix.schema, 40, rng)
        full = release.answer_boxes(lows, highs)
        monkeypatch.setattr(release_module, "_CHUNK_BUDGET", 1)
        np.testing.assert_allclose(release.answer_boxes(lows, highs), full)

    def test_nbytes_counts_serving_state(self, mixed_matrix):
        release = CoefficientRelease.from_matrix(mixed_matrix, ("X",))
        base = release.nbytes()
        assert base == release.coefficients.nbytes
        release.answer_box([(0, 1), (0, 6), (0, 4)])
        # An SA axis exists, so the prefix-summed serving tensor was built.
        assert release.nbytes() > base

    def test_no_identity_axes_serves_in_place(self, mixed_matrix):
        release = CoefficientRelease.from_matrix(mixed_matrix, ())
        release.answer_box([(0, 1), (0, 6), (0, 4)])
        assert release.nbytes() == release.coefficients.nbytes


class TestMaterializeSwitch:
    def test_same_seed_same_answers(self, mixed_matrix, rng):
        mechanism = PriveletPlusMechanism(sa_names=("X",))
        dense = mechanism.publish_matrix(mixed_matrix, 1.0, seed=11)
        coeff = mechanism.publish_matrix(mixed_matrix, 1.0, seed=11, materialize=False)
        assert dense.representation == "dense"
        assert coeff.representation == "coefficients"
        lows, highs = random_boxes(mixed_matrix.schema, 50, rng)
        np.testing.assert_allclose(
            coeff.release.answer_boxes(lows, highs),
            dense.release.answer_boxes(lows, highs),
            rtol=1e-9,
            atol=1e-8,
        )

    def test_basic_coefficients_are_the_cells(self, mixed_matrix):
        dense = BasicMechanism().publish_matrix(mixed_matrix, 1.0, seed=3)
        coeff = BasicMechanism().publish_matrix(
            mixed_matrix, 1.0, seed=3, materialize=False
        )
        np.testing.assert_array_equal(
            coeff.release.coefficients, dense.matrix.values
        )
        assert infer_sa_names(coeff) == mixed_matrix.schema.names

    def test_matrix_property_materializes(self, mixed_matrix):
        coeff = PriveletPlusMechanism(sa_names=()).publish_matrix(
            mixed_matrix, 1.0, seed=4, materialize=False
        )
        dense = PriveletPlusMechanism(sa_names=()).publish_matrix(
            mixed_matrix, 1.0, seed=4
        )
        np.testing.assert_allclose(
            coeff.matrix.values, dense.matrix.values, atol=1e-9
        )

    def test_unsupported_mechanism_refuses(self, mixed_table):
        from repro.core.framework import PublishingMechanism

        class NoCoefficients(PublishingMechanism):
            name = "stub"

        with pytest.raises(PrivacyError):
            NoCoefficients().publish(mixed_table, 1.0, materialize=False)


class TestConvertResult:
    def test_round_trip_preserves_answers(self, mixed_matrix, rng):
        result = PriveletPlusMechanism(sa_names=("X",)).publish_matrix(
            mixed_matrix, 1.0, seed=6, materialize=False
        )
        as_dense = convert_result(result, "dense")
        back = convert_result(as_dense, "coefficients")
        assert as_dense.representation == "dense"
        assert back.representation == "coefficients"
        lows, highs = random_boxes(mixed_matrix.schema, 30, rng)
        reference = result.release.answer_boxes(lows, highs)
        np.testing.assert_allclose(
            as_dense.release.answer_boxes(lows, highs), reference, rtol=1e-9, atol=1e-8
        )
        np.testing.assert_allclose(
            back.release.answer_boxes(lows, highs), reference, rtol=1e-9, atol=1e-8
        )
        # Accounting fields survive both conversions.
        assert back.epsilon == result.epsilon
        assert back.noise_magnitude == result.noise_magnitude

    def test_identity_conversion_returns_same_result(self, mixed_matrix):
        result = BasicMechanism().publish_matrix(mixed_matrix, 1.0, seed=1)
        assert convert_result(result, "dense") is result

    def test_unknown_representation_rejected(self, mixed_matrix):
        result = BasicMechanism().publish_matrix(mixed_matrix, 1.0, seed=1)
        with pytest.raises(QueryError):
            convert_result(result, "sparse")
        assert set(REPRESENTATIONS) == {"dense", "coefficients"}

    def test_sa_override_used_when_details_missing(self, mixed_matrix, rng):
        import dataclasses

        # A result whose metadata records nothing (e.g. a legacy archive):
        # conversion must honour an explicit SA set instead of failing.
        result = dataclasses.replace(
            PriveletPlusMechanism(sa_names=("X",)).publish_matrix(
                mixed_matrix, 1.0, seed=8
            ),
            details={},
        )
        with pytest.raises(QueryError):
            convert_result(result, "coefficients")
        converted = convert_result(result, "coefficients", sa_names=("X",))
        assert converted.release.sa_names == ("X",)
        lows, highs = random_boxes(mixed_matrix.schema, 20, rng)
        np.testing.assert_allclose(
            converted.release.answer_boxes(lows, highs),
            result.release.answer_boxes(lows, highs),
            rtol=1e-9,
            atol=1e-8,
        )


class TestOneDimensionalReleases:
    def test_ordinal_release_never_materializes(self, rng):
        counts = rng.integers(0, 5, size=1 << 12).astype(np.float64)
        result = publish_ordinal_release(counts, 1.0, seed=2)
        assert result.representation == "coefficients"
        schema = result.release.schema
        queries = generate_workload(schema, 40, seed=3)
        from repro.queries.engine import QueryEngine
        from repro.queries.oracle import RangeSumOracle

        engine = QueryEngine(result)
        np.testing.assert_allclose(
            engine.answer_all(queries),
            RangeSumOracle(result.matrix).answer_all(queries),
            rtol=1e-9,
            atol=1e-8,
        )

    def test_nominal_release(self, rng):
        hierarchy = two_level_hierarchy([3, 4, 2])
        counts = rng.integers(0, 9, size=hierarchy.num_leaves).astype(np.float64)
        result = publish_nominal_release(counts, hierarchy, 1.0, seed=5)
        assert result.representation == "coefficients"
        total = result.release.answer_box([(0, hierarchy.num_leaves)])
        assert total == pytest.approx(float(result.matrix.values.sum()), abs=1e-8)

    def test_vector_shape_validated(self):
        with pytest.raises(PrivacyError):
            publish_ordinal_release(np.zeros((2, 2)), 1.0)
