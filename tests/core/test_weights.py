"""Unit tests for the paper-named weight functions."""

import numpy as np

from repro.core.weights import w_haar, w_hn, w_nominal


class TestWeights:
    def test_w_haar(self):
        np.testing.assert_array_equal(w_haar(4), [4, 4, 2, 2])

    def test_w_nominal(self, figure3_hierarchy):
        weights = w_nominal(figure3_hierarchy)
        assert weights[0] == 1.0
        np.testing.assert_allclose(weights[3:], 0.75)

    def test_w_hn_per_axis(self, mixed_schema):
        vectors = w_hn(mixed_schema)
        assert len(vectors) == 3
        assert len(vectors[0]) == 8  # padded Haar
        assert len(vectors[1]) == 9  # nominal nodes
        assert len(vectors[2]) == 4

    def test_w_hn_sa_axis_is_ones(self, mixed_schema):
        vectors = w_hn(mixed_schema, sa_names=("X",))
        np.testing.assert_array_equal(vectors[0], np.ones(5))
