"""Tests for the composition algebra: parity, nesting, windows, errors."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.exact import query_boxes
from repro.core.compose import Partition, TimeTree
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import (
    ShardedRelease,
    publish_sharded,
    shard_bounds,
    shard_schema,
)
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.data.table import Table
from repro.errors import ServingError, StreamingError
from repro.io import load_result, save_result
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher

SPEC = BRAZIL.scaled(0.05)
SHARD_BY = "Age"
EPOCHS = 5


@pytest.fixture(scope="module")
def schema():
    return census_schema(SPEC)


@pytest.fixture(scope="module", params=[True, False], ids=["dense", "coefficients"])
def sharded_result(request, schema):
    table = generate_census_table(SPEC, 2_000, seed=3)
    return publish_sharded(
        table,
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        shard_by=SHARD_BY,
        shards=4,
        seed=7,
        materialize=request.param,
        parallel=False,
    )


@pytest.fixture(scope="module")
def boxes(schema):
    queries = generate_workload(schema, 60, seed=11)
    return query_boxes(queries, schema.shape)


@pytest.fixture(scope="module")
def sharded_streams(schema):
    """A nested composition: shard x time, one stream per Age interval."""
    bounds = shard_bounds(schema[0].size, 2)
    parts = []
    for lo, hi in zip(bounds, bounds[1:]):
        sub_schema = shard_schema(schema, SHARD_BY, lo, hi)
        publisher = StreamingPublisher(
            sub_schema, PriveletPlusMechanism(sa_names="auto"), 1.0, seed=500 + lo
        )
        for epoch in range(EPOCHS):
            table = generate_census_table(SPEC, 300, seed=1000 + 10 * lo + epoch)
            rows = table.rows
            keep = (rows[:, 0] >= lo) & (rows[:, 0] < hi)
            rows = rows[keep].copy()
            rows[:, 0] -= lo
            publisher.ingest(Table(sub_schema, rows))
            publisher.advance_epoch()
        parts.append(publisher.result())
    nested = Partition(schema, SHARD_BY, bounds, parts)
    return nested, bounds, parts


class TestAlgebraParity:
    def test_sharded_release_is_disjoint_union(self, sharded_result):
        release = sharded_result.release
        assert isinstance(release, Partition)
        assert isinstance(release, ShardedRelease)

    def test_plain_union_matches_thin_subclass_bitwise(self, sharded_result, boxes):
        release = sharded_result.release
        results = [release.shard_result(i) for i in range(release.num_shards)]
        plain = Partition(
            release.schema, release.attribute, release.bounds, results
        )
        lows, highs = boxes
        np.testing.assert_array_equal(
            plain.answer_boxes(lows, highs), release.answer_boxes(lows, highs)
        )
        np.testing.assert_array_equal(
            plain.noise_variances_boxes(lows, highs),
            release.noise_variances_boxes(lows, highs),
        )

    def test_engine_paths_agree_bitwise(self, sharded_result, boxes):
        engine = QueryEngine(sharded_result)
        lows, highs = boxes
        batch = engine.answer_columnar(lows, highs)
        np.testing.assert_array_equal(
            batch.estimates, sharded_result.release.answer_boxes(lows, highs)
        )
        np.testing.assert_array_equal(
            batch.noise_stds,
            np.sqrt(engine.noise_variances_columnar(lows, highs)),
        )

    def test_degenerate_boxes_are_exact_zero(self, sharded_result, schema):
        lows = np.zeros((3, schema.dimensions), dtype=np.int64)
        highs = np.asarray([list(schema.shape)] * 3, dtype=np.int64)
        highs[1] = lows[1]  # fully degenerate row
        highs[2, 0] = 0  # degenerate on one axis only
        release = sharded_result.release
        answers = release.answer_boxes(lows, highs)
        variances = release.noise_variances_boxes(lows, highs)
        assert answers[1] == 0.0 and answers[2] == 0.0
        assert variances[1] == 0.0 and variances[2] == 0.0
        assert answers[0] != 0.0 and variances[0] > 0.0

    def test_convert_round_trip_preserves_answers(self, sharded_result, boxes):
        release = sharded_result.release
        lows, highs = boxes
        for representation in ("dense", "coefficients"):
            converted = release.convert(representation)
            assert {
                part.representation for part in converted.parts
            } == {representation}
            np.testing.assert_allclose(
                converted.answer_boxes(lows, highs),
                release.answer_boxes(lows, highs),
                rtol=1e-9,
                atol=1e-9,
            )

    def test_archive_round_trip_of_plain_union(self, sharded_result, boxes, tmp_path):
        release = sharded_result.release
        plain = Partition(
            release.schema,
            release.attribute,
            release.bounds,
            [release.shard_result(i) for i in range(release.num_shards)],
        )
        path = tmp_path / "union.npz"
        save_result(path, dataclasses.replace(sharded_result, release=plain))
        loaded = load_result(path)
        lows, highs = boxes
        np.testing.assert_array_equal(
            loaded.release.answer_boxes(lows, highs),
            plain.answer_boxes(lows, highs),
        )


class TestNestedShardTime:
    def test_nested_answers_sum_per_shard_windows(self, sharded_streams, schema):
        nested, bounds, parts = sharded_streams
        queries = generate_workload(schema, 40, seed=21)
        lows, highs = query_boxes(queries, schema.shape)
        got = nested.answer_boxes(lows, highs)
        want = np.zeros(len(queries))
        for (lo, hi), part in zip(zip(bounds, bounds[1:]), parts):
            clip_lo = np.clip(lows[:, 0] - lo, 0, hi - lo)
            clip_hi = np.clip(highs[:, 0] - lo, 0, hi - lo)
            sub_lows, sub_highs = lows.copy(), highs.copy()
            sub_lows[:, 0], sub_highs[:, 0] = clip_lo, clip_hi
            want += part.release.answer_boxes(sub_lows, sub_highs)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_nested_window_queries_with_exact_variances(self, sharded_streams, schema):
        nested, bounds, parts = sharded_streams
        queries = generate_workload(schema, 30, seed=22)
        lows, highs = query_boxes(queries, schema.shape)
        for window in [(0, EPOCHS), (1, 4), (2, 3)]:
            view = nested.window(*window)
            assert isinstance(view, Partition)
            got = view.answer_boxes(lows, highs)
            variances = view.noise_variances_boxes(lows, highs)
            want = np.zeros(len(queries))
            want_var = np.zeros(len(queries))
            for (lo, hi), part in zip(zip(bounds, bounds[1:]), parts):
                clip_lo = np.clip(lows[:, 0] - lo, 0, hi - lo)
                clip_hi = np.clip(highs[:, 0] - lo, 0, hi - lo)
                sub_lows, sub_highs = lows.copy(), highs.copy()
                sub_lows[:, 0], sub_highs[:, 0] = clip_lo, clip_hi
                shard_window = part.release.window(*window)
                want += shard_window.answer_boxes(sub_lows, sub_highs)
                want_var += shard_window.noise_variances_boxes(sub_lows, sub_highs)
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(variances, want_var, rtol=1e-9, atol=1e-9)

    def test_nested_parts_are_dyadic_merges(self, sharded_streams):
        nested, _, _ = sharded_streams
        for index in range(nested.num_parts):
            assert isinstance(nested.part_result(index).release, TimeTree)

    def test_window_on_static_shards_rejected(self, sharded_result):
        with pytest.raises(StreamingError, match="not time-aware"):
            sharded_result.release.window(0, 1)

    def test_nested_union_archives_as_v5(self, sharded_streams, schema, tmp_path):
        nested, _, _ = sharded_streams
        wrapped = publish_result_stub(nested)
        path = tmp_path / "nested.npz"
        save_result(path, wrapped)
        loaded = load_result(path)
        release = loaded.release
        assert isinstance(release, Partition)
        # Leaf-lazy: the manifest alone rebuilds the tree structure.
        for index in range(release.num_parts):
            inner = release.part_result(index).release
            assert isinstance(inner, TimeTree)
            assert inner.nodes_loaded == 0
        queries = generate_workload(schema, 40, seed=23)
        lows, highs = query_boxes(queries, schema.shape)
        np.testing.assert_array_equal(
            release.answer_boxes(lows, highs), nested.answer_boxes(lows, highs)
        )
        np.testing.assert_array_equal(
            release.noise_variances_boxes(lows, highs),
            nested.noise_variances_boxes(lows, highs),
        )
        assert loaded.epsilon == wrapped.epsilon

    def test_nested_union_round_trips_through_parts(self, sharded_streams, schema):
        from repro.io import result_from_parts, result_to_parts

        nested, _, _ = sharded_streams
        wrapped = publish_result_stub(nested)
        header, arrays = result_to_parts(wrapped)
        assert header["format"] == 5
        rebuilt = result_from_parts(header, arrays)
        queries = generate_workload(schema, 40, seed=24)
        lows, highs = query_boxes(queries, schema.shape)
        np.testing.assert_array_equal(
            rebuilt.release.answer_boxes(lows, highs),
            nested.answer_boxes(lows, highs),
        )
        np.testing.assert_array_equal(
            rebuilt.release.noise_variances_boxes(lows, highs),
            nested.noise_variances_boxes(lows, highs),
        )

    def test_nested_window_round_trips_as_v5(self, sharded_streams, schema, tmp_path):
        nested, _, _ = sharded_streams
        view = nested.window(1, 4)
        wrapped = publish_result_stub(view)
        path = tmp_path / "windowed.npz"
        save_result(path, wrapped)
        loaded = load_result(path)
        queries = generate_workload(schema, 20, seed=25)
        lows, highs = query_boxes(queries, schema.shape)
        np.testing.assert_array_equal(
            loaded.release.answer_boxes(lows, highs),
            view.answer_boxes(lows, highs),
        )


def publish_result_stub(release):
    from repro.core.framework import PublishResult

    return PublishResult(
        release=release,
        epsilon=1.0,
        noise_magnitude=1.0,
        generalized_sensitivity=1.0,
        variance_bound=1.0,
        details={"sharded": True},
    )


class TestComposedConversion:
    """convert_result must delegate through the algebra's convert hook."""

    def test_uniform_target_returns_same_result(self, sharded_streams):
        from repro.core.release import convert_result

        nested, _, _ = sharded_streams
        wrapped = publish_result_stub(nested)
        # Every leaf already sits in coefficient space, recursively: the
        # no-op conversion must short-circuit without rebuilding parts.
        assert convert_result(wrapped, "coefficients") is wrapped

    def test_sharded_stream_converts_through_algebra(self, sharded_streams, schema):
        from repro.core.release import convert_result

        nested, _, _ = sharded_streams
        wrapped = publish_result_stub(nested)
        converted = convert_result(wrapped, "dense")
        assert converted is not wrapped
        release = converted.release
        assert isinstance(release, Partition)
        for index in range(release.num_parts):
            inner = release.part_result(index).release
            assert isinstance(inner, TimeTree)
            assert all(
                node.representation == "dense" for node in inner.nodes.values()
            )
        queries = generate_workload(schema, 30, seed=26)
        lows, highs = query_boxes(queries, schema.shape)
        np.testing.assert_allclose(
            release.answer_boxes(lows, highs),
            nested.answer_boxes(lows, highs),
            rtol=1e-9,
            atol=1e-9,
        )


class TestSaOverride:
    def test_sharded_override_rejected(self, sharded_result):
        with pytest.raises(ServingError, match="own SA configuration"):
            QueryEngine(sharded_result, sa_names=("Age",))

    def test_nested_override_rejected(self, sharded_streams):
        nested, _, _ = sharded_streams
        with pytest.raises(ServingError, match="own SA configuration"):
            QueryEngine(publish_result_stub(nested), sa_names=("Age",))

    def test_stream_override_rejected(self, sharded_streams):
        _, _, parts = sharded_streams
        with pytest.raises(ServingError, match="own SA configuration"):
            QueryEngine(parts[0], sa_names=("Gender",))


class TestPartCover:
    def test_cover_prunes_untouched_shards(self, sharded_result, schema):
        release = sharded_result.release
        lows = np.zeros((1, schema.dimensions), dtype=np.int64)
        highs = np.asarray([list(schema.shape)], dtype=np.int64)
        assert release.part_cover(lows, highs) == tuple(range(release.num_shards))
        highs = highs.copy()
        highs[0, 0] = release.bounds[1]
        assert release.part_cover(lows, highs) == (0,)

    def test_stream_cover_is_dyadic(self, sharded_streams, schema):
        _, bounds, parts = sharded_streams
        stream = parts[0].release
        sub_shape = stream.schema.shape
        lows = np.zeros((1, len(sub_shape)), dtype=np.int64)
        highs = np.asarray([list(sub_shape)], dtype=np.int64)
        cover = stream.part_cover(lows, highs)
        assert len(cover) == len(stream.cover)
