"""Tests for privacy-free post-processing of published matrices."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.postprocess import (
    clamp_nonnegative,
    rescale_total,
    round_to_integers,
    sanitize,
)
from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import PrivacyError


def matrix_of(values):
    schema = Schema([OrdinalAttribute("A", len(values))])
    return FrequencyMatrix(schema, np.asarray(values, dtype=float))


class TestOperations:
    def test_clamp(self):
        out = clamp_nonnegative(matrix_of([-1.5, 0.0, 2.5]))
        np.testing.assert_array_equal(out.values, [0.0, 0.0, 2.5])

    def test_clamp_does_not_mutate(self):
        original = matrix_of([-1.0, 1.0])
        clamp_nonnegative(original)
        np.testing.assert_array_equal(original.values, [-1.0, 1.0])

    def test_round(self):
        out = round_to_integers(matrix_of([0.4, 0.6, -1.2]))
        np.testing.assert_array_equal(out.values, [0.0, 1.0, -1.0])

    def test_rescale(self):
        out = rescale_total(matrix_of([1.0, 3.0]), 8.0)
        np.testing.assert_allclose(out.values, [2.0, 6.0])
        assert out.total == pytest.approx(8.0)

    def test_rescale_rejects_nonpositive_total(self):
        with pytest.raises(PrivacyError):
            rescale_total(matrix_of([-1.0, 0.5]), 5.0)
        with pytest.raises(PrivacyError):
            rescale_total(matrix_of([1.0]), -2.0)

    def test_sanitize_composition(self):
        out = sanitize(
            matrix_of([-2.0, 3.0, 5.0]), nonnegative=True, integral=True, target_total=4.0
        )
        assert out.values.min() >= 0
        assert np.all(out.values == np.rint(out.values))
        assert out.total == pytest.approx(4.0, abs=1.0)  # rounding slack

    def test_sanitize_defaults_only_clamp(self):
        out = sanitize(matrix_of([-1.0, 2.5]))
        np.testing.assert_array_equal(out.values, [0.0, 2.5])


class TestStatisticalEffects:
    def test_clamping_reduces_mse_on_sparse_data(self):
        """On sparse counts (many zero cells), clamping strictly helps
        cell-level accuracy: negative noise on zero cells is removed."""
        schema = Schema([OrdinalAttribute("A", 4096)])
        exact = FrequencyMatrix(schema, np.zeros(4096))
        raw_mse, clamped_mse = 0.0, 0.0
        for seed in range(20):
            noisy = BasicMechanism().publish_matrix(exact, 1.0, seed=seed).matrix
            raw_mse += float(((noisy.values - exact.values) ** 2).mean())
            clamped = clamp_nonnegative(noisy)
            clamped_mse += float(((clamped.values - exact.values) ** 2).mean())
        assert clamped_mse < raw_mse

    def test_clamping_biases_totals_upward_on_sparse_data(self):
        """The documented trade-off: clamping keeps positive noise but
        discards negative noise, inflating the total of sparse data."""
        schema = Schema([OrdinalAttribute("A", 4096)])
        exact = FrequencyMatrix(schema, np.zeros(4096))
        totals = []
        for seed in range(20):
            noisy = BasicMechanism().publish_matrix(exact, 1.0, seed=seed).matrix
            totals.append(clamp_nonnegative(noisy).total)
        assert np.mean(totals) > 100  # far above the exact total of 0
