"""Unit tests for the Basic (Dwork et al.) mechanism."""

import numpy as np
import pytest

from repro.core.basic import FREQUENCY_MATRIX_SENSITIVITY, BasicMechanism
from repro.errors import PrivacyError


class TestBasic:
    def test_magnitude_is_two_over_epsilon(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, epsilon=0.5, seed=1)
        assert result.noise_magnitude == 4.0
        assert result.epsilon == 0.5

    def test_output_shape(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, epsilon=1.0, seed=1)
        assert result.matrix.shape == mixed_table.schema.shape

    def test_noise_is_zero_mean(self, mixed_table):
        exact = mixed_table.frequency_matrix()
        total = 0.0
        for seed in range(30):
            result = BasicMechanism().publish_matrix(exact, 1.0, seed=seed)
            total += (result.matrix.values - exact.values).mean()
        assert abs(total / 30) < 0.3

    def test_per_cell_variance(self):
        """Each cell carries Laplace(2/eps) noise: variance 8/eps^2."""
        from repro.data.attributes import OrdinalAttribute
        from repro.data.frequency import FrequencyMatrix
        from repro.data.schema import Schema

        schema = Schema([OrdinalAttribute("A", 50_000)])
        exact = FrequencyMatrix.zeros(schema)
        result = BasicMechanism().publish_matrix(exact, epsilon=2.0, seed=5)
        assert np.var(result.matrix.values) == pytest.approx(8.0 / 4.0, rel=0.05)

    def test_variance_bound_is_8m_over_eps2(self, mixed_schema):
        bound = BasicMechanism().variance_bound(mixed_schema, epsilon=1.0)
        assert bound == pytest.approx(8.0 * mixed_schema.num_cells)

    def test_deterministic_with_seed(self, mixed_table):
        a = BasicMechanism().publish(mixed_table, 1.0, seed=9)
        b = BasicMechanism().publish(mixed_table, 1.0, seed=9)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)

    def test_rejects_bad_epsilon(self, mixed_table):
        with pytest.raises(PrivacyError):
            BasicMechanism().publish(mixed_table, 0.0)
        with pytest.raises(PrivacyError):
            BasicMechanism().publish(mixed_table, -1.0)
        with pytest.raises(PrivacyError):
            BasicMechanism().publish(mixed_table, "1")

    def test_sensitivity_constant(self):
        assert FREQUENCY_MATRIX_SENSITIVITY == 2.0

    def test_result_details(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=1)
        assert result.details["mechanism"] == "Basic"
        assert result.generalized_sensitivity == 1.0
