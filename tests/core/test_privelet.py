"""Unit tests for the Privelet mechanism and the 1-D entry points."""

import numpy as np
import pytest

from repro.core.privelet import (
    PriveletMechanism,
    publish_nominal_vector,
    publish_ordinal_vector,
)
from repro.errors import PrivacyError


class TestPriveletMechanism:
    def test_name_and_sa(self, mixed_schema):
        mechanism = PriveletMechanism()
        assert mechanism.name == "Privelet"
        assert mechanism.sa_for(mixed_schema) == ()

    def test_publish_shape(self, mixed_table):
        result = PriveletMechanism().publish(mixed_table, 1.0, seed=2)
        assert result.matrix.shape == mixed_table.schema.shape

    def test_magnitude_follows_theorem2(self, mixed_table):
        """lambda = (2/eps) * prod P(A) = 2 * 36 at eps = 2."""
        result = PriveletMechanism().publish(mixed_table, 2.0, seed=2)
        assert result.noise_magnitude == pytest.approx(36.0)
        assert result.generalized_sensitivity == pytest.approx(36.0)

    def test_noise_concentrates_with_epsilon(self, mixed_table):
        exact = mixed_table.frequency_matrix()
        loose = PriveletMechanism().publish(mixed_table, 0.1, seed=3)
        tight = PriveletMechanism().publish(mixed_table, 10.0, seed=3)
        loose_err = np.abs(loose.matrix.values - exact.values).mean()
        tight_err = np.abs(tight.matrix.values - exact.values).mean()
        assert tight_err < loose_err

    def test_total_count_approximately_preserved(self, mixed_table):
        """The base coefficient is heavily weighted, so the noisy total is
        close to n."""
        result = PriveletMechanism().publish(mixed_table, 1.0, seed=4)
        assert result.matrix.total == pytest.approx(
            mixed_table.num_rows, abs=0.25 * mixed_table.num_rows
        )

    def test_deterministic_with_seed(self, mixed_table):
        a = PriveletMechanism().publish(mixed_table, 1.0, seed=11)
        b = PriveletMechanism().publish(mixed_table, 1.0, seed=11)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)


class TestOrdinalVector:
    def test_output_length(self, rng):
        counts = rng.integers(0, 50, size=11).astype(float)
        noisy = publish_ordinal_vector(counts, 1.0, seed=1)
        assert noisy.shape == (11,)

    def test_noise_shrinks_with_epsilon(self, rng):
        counts = rng.integers(0, 50, size=64).astype(float)
        loose = publish_ordinal_vector(counts, 0.05, seed=2)
        tight = publish_ordinal_vector(counts, 50.0, seed=2)
        assert np.abs(tight - counts).mean() < np.abs(loose - counts).mean()

    def test_rejects_2d(self):
        with pytest.raises(PrivacyError):
            publish_ordinal_vector(np.zeros((2, 2)), 1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyError):
            publish_ordinal_vector(np.zeros(4), 0.0)


class TestNominalVector:
    def test_output_length(self, figure3_hierarchy, figure3_vector):
        noisy = publish_nominal_vector(figure3_vector, figure3_hierarchy, 1.0, seed=1)
        assert noisy.shape == (6,)

    def test_length_mismatch(self, figure3_hierarchy):
        with pytest.raises(PrivacyError):
            publish_nominal_vector(np.zeros(5), figure3_hierarchy, 1.0)

    def test_rejects_2d(self, figure3_hierarchy):
        with pytest.raises(PrivacyError):
            publish_nominal_vector(np.zeros((6, 1)), figure3_hierarchy, 1.0)

    def test_high_epsilon_approaches_exact(self, figure3_hierarchy, figure3_vector):
        noisy = publish_nominal_vector(
            figure3_vector, figure3_hierarchy, 1e7, seed=3
        )
        np.testing.assert_allclose(noisy, figure3_vector, atol=1e-2)
