"""The unified publish() facade: parity with the legacy entry points."""

import numpy as np
import pytest

import repro
from repro.analysis.exact import query_boxes
from repro.core.compose import Partition, TimeTree
from repro.core.privelet import (
    publish_nominal_release,
    publish_ordinal_release,
)
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.publish import publish
from repro.core.sharding import publish_sharded, shard_bounds, shard_schema
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import balanced_hierarchy
from repro.data.table import Table
from repro.errors import PrivacyError, StreamingError
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher
from repro.streaming.release import stream_result

SPEC = BRAZIL.scaled(0.05)


def _assert_same_result(got, want):
    assert type(got.release) is type(want.release)
    np.testing.assert_array_equal(
        got.release.to_matrix().values, want.release.to_matrix().values
    )
    assert got.epsilon == want.epsilon
    assert got.noise_magnitude == want.noise_magnitude
    assert got.variance_bound == want.variance_bound


class TestLeafParity:
    def test_ordinal_alias_matches_facade_bitwise(self):
        counts = np.arange(32, dtype=np.float64)
        with pytest.deprecated_call():
            want = publish_ordinal_release(counts, 0.5, seed=9)
        got = publish(counts, 0.5, mechanism="privelet", seed=9)
        _assert_same_result(got, want)

    def test_nominal_alias_matches_facade_bitwise(self):
        hierarchy = balanced_hierarchy(27, fanout=3)
        counts = np.arange(27, dtype=np.float64)
        with pytest.deprecated_call():
            want = publish_nominal_release(counts, hierarchy, 0.5, seed=4)
        got = publish(
            counts, 0.5, mechanism="privelet", hierarchy=hierarchy, seed=4
        )
        _assert_same_result(got, want)

    def test_counts_default_to_coefficients(self):
        result = publish(np.ones(16), 1.0, seed=0)
        assert result.representation == "coefficients"
        dense = publish(np.ones(16), 1.0, seed=0, representation="dense")
        assert dense.representation == "dense"

    def test_table_publish_matches_mechanism(self):
        table = generate_census_table(SPEC, 500, seed=1)
        want = PriveletPlusMechanism(sa_names="auto").publish(
            table, 1.0, seed=2
        )
        got = publish(table, 1.0, seed=2)
        _assert_same_result(got, want)

    def test_matrix_publish_matches_mechanism(self):
        schema = census_schema(SPEC)
        matrix = generate_census_table(SPEC, 500, seed=1).frequency_matrix()
        want = PriveletPlusMechanism(sa_names="auto").publish_matrix(
            matrix, 1.0, seed=2
        )
        got = publish(matrix, 1.0, seed=2)
        assert isinstance(matrix, FrequencyMatrix)
        assert schema.shape == matrix.shape
        _assert_same_result(got, want)


class TestShardedParity:
    def test_sharded_alias_matches_facade_bitwise(self):
        table = generate_census_table(SPEC, 1_000, seed=5)
        with pytest.deprecated_call():
            want = publish_sharded(
                table,
                PriveletPlusMechanism(sa_names="auto"),
                1.0,
                shard_by="Age",
                shards=3,
                seed=11,
                parallel=False,
            )
        got = publish(
            table, 1.0, shard_by="Age", shards=3, seed=11, parallel=False
        )
        queries = generate_workload(table.schema, 40, seed=6)
        lows, highs = query_boxes(queries, table.schema.shape)
        np.testing.assert_array_equal(
            got.release.answer_boxes(lows, highs),
            want.release.answer_boxes(lows, highs),
        )
        assert got.details == want.details

    def test_shard_by_requires_table(self):
        with pytest.raises(PrivacyError, match="requires a Table"):
            publish(np.ones(8), 1.0, shard_by="Age")


class TestStreamParity:
    def test_stream_matches_manual_publisher(self):
        table = generate_census_table(SPEC, 600, seed=7)
        timestamps = np.arange(table.rows.shape[0]) % 5
        got = publish(table, 1.0, stream=timestamps, seed=13)
        assert isinstance(got.release, TimeTree)
        assert got.release.epochs == 5

        publisher = StreamingPublisher(
            table.schema, PriveletPlusMechanism(sa_names="auto"), 1.0, seed=13
        )
        publisher.ingest(table, timestamps=timestamps)
        for _ in range(5):
            publisher.advance_epoch()
        want = publisher.result()
        queries = generate_workload(table.schema, 30, seed=8)
        lows, highs = query_boxes(queries, table.schema.shape)
        np.testing.assert_array_equal(
            got.release.answer_boxes(lows, highs),
            want.release.answer_boxes(lows, highs),
        )
        assert got.variance_bound == want.variance_bound

    def test_stream_dict_config(self):
        table = generate_census_table(SPEC, 200, seed=7)
        timestamps = np.arange(table.rows.shape[0]) % 6
        result = publish(
            table,
            1.0,
            stream={"timestamps": timestamps, "epoch_length": 2, "epochs": 4},
            seed=1,
        )
        assert result.release.epochs == 4
        assert result.details["epoch_length"] == 2

    def test_stream_requires_matching_timestamps(self):
        table = generate_census_table(SPEC, 100, seed=7)
        with pytest.raises(StreamingError, match="timestamps for"):
            publish(table, 1.0, stream=np.arange(3))

    def test_sharded_stream_composes(self):
        table = generate_census_table(SPEC, 800, seed=9)
        timestamps = np.arange(table.rows.shape[0]) % 4
        result = publish(
            table, 1.0, shard_by="Age", shards=2, stream=timestamps, seed=17
        )
        release = result.release
        assert isinstance(release, Partition)
        for index in range(release.num_parts):
            assert isinstance(release.part_result(index).release, TimeTree)
        assert result.details["sharded"] and result.details["stream"]

        # Per-shard noise is a pure function of (seed, shard): shard i
        # equals a standalone stream publish of its slice.
        schema = table.schema
        bounds = shard_bounds(schema[0].size, 2)
        lo, hi = bounds[0], bounds[1]
        mask = (table.rows[:, 0] >= lo) & (table.rows[:, 0] < hi)
        rows = table.rows[mask].copy()
        rows[:, 0] -= lo
        sub = Table(shard_schema(schema, "Age", lo, hi), rows)
        shard_seed = int(
            np.random.SeedSequence(entropy=17, spawn_key=(0,)).generate_state(
                1, dtype=np.uint64
            )[0]
        )
        solo = publish(
            sub,
            1.0,
            stream={"timestamps": timestamps[mask], "epochs": 4},
            seed=shard_seed,
        )
        queries = generate_workload(sub.schema, 20, seed=10)
        lows, highs = query_boxes(queries, sub.schema.shape)
        np.testing.assert_array_equal(
            release.part_result(0).release.answer_boxes(lows, highs),
            solo.release.answer_boxes(lows, highs),
        )


class TestValidation:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(PrivacyError, match="unknown mechanism"):
            publish(np.ones(4), 1.0, mechanism="laplace-tree")

    def test_non_string_mechanism_rejected(self):
        with pytest.raises(PrivacyError, match="PublishingMechanism"):
            publish(np.ones(4), 1.0, mechanism=42)

    def test_bad_representation_rejected(self):
        with pytest.raises(PrivacyError, match="representation"):
            publish(np.ones(4), 1.0, representation="sparse")

    def test_hierarchy_on_table_rejected(self):
        table = generate_census_table(SPEC, 50, seed=0)
        with pytest.raises(PrivacyError, match="1-D count vectors"):
            publish(table, 1.0, hierarchy=balanced_hierarchy(4, fanout=2))

    def test_stream_requires_table(self):
        with pytest.raises(StreamingError, match="requires a Table"):
            publish(np.ones(8), 1.0, stream=np.arange(8))

    def test_facade_is_exported(self):
        assert repro.publish is publish
        assert "publish" in repro.__all__


class TestDeprecationWarnings:
    def test_stream_result_alias_warns_and_matches(self):
        table = generate_census_table(SPEC, 200, seed=3)
        publisher = StreamingPublisher(
            table.schema, PriveletPlusMechanism(sa_names="auto"), 1.0, seed=2
        )
        publisher.ingest(table)
        publisher.advance_epoch()
        release = publisher.release()
        with pytest.deprecated_call():
            wrapped = stream_result(release, epsilon=1.0)
        assert wrapped.release is release
        assert wrapped.epsilon == publisher.result().epsilon

    def test_publisher_result_does_not_warn(self, recwarn):
        table = generate_census_table(SPEC, 100, seed=3)
        publisher = StreamingPublisher(
            table.schema, PriveletPlusMechanism(sa_names="auto"), 1.0, seed=2
        )
        publisher.ingest(table)
        publisher.advance_epoch()
        publisher.result()
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
