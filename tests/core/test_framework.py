"""Tests for the mechanism framework contract and input hardening."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.framework import PublishingMechanism, PublishResult
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import PrivacyError


class TestInputHardening:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize(
        "mechanism", [BasicMechanism(), PriveletPlusMechanism(sa_names=())]
    )
    def test_non_finite_matrices_rejected(self, mechanism, bad):
        schema = Schema([OrdinalAttribute("A", 4)])
        values = np.ones(4)
        values[2] = bad
        matrix = FrequencyMatrix(schema, values)
        with pytest.raises(PrivacyError):
            mechanism.publish_matrix(matrix, 1.0, seed=0)

    def test_finite_matrices_accepted(self):
        schema = Schema([OrdinalAttribute("A", 4)])
        matrix = FrequencyMatrix(schema, np.ones(4))
        result = BasicMechanism().publish_matrix(matrix, 1.0, seed=0)
        assert np.isfinite(result.matrix.values).all()


class TestFrameworkContract:
    def test_base_publish_matrix_abstract(self, mixed_table):
        with pytest.raises(NotImplementedError):
            PublishingMechanism().publish(mixed_table, 1.0)

    def test_base_variance_bound_abstract(self, mixed_schema):
        with pytest.raises(NotImplementedError):
            PublishingMechanism().variance_bound(mixed_schema, 1.0)

    def test_result_is_frozen(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=1)
        with pytest.raises(Exception):
            result.epsilon = 2.0

    def test_result_fields(self, mixed_table):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=1)
        assert isinstance(result, PublishResult)
        assert result.matrix.schema == mixed_table.schema
        assert result.epsilon == 1.0
        assert result.variance_bound > 0
