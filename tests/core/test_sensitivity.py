"""Unit tests for generalized-sensitivity computation (Definition 3)."""

import pytest

from repro.core.sensitivity import (
    empirical_generalized_sensitivity,
    sensitivity_of_schema,
    variance_factor_of_schema,
)
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import balanced_hierarchy, flat_hierarchy, two_level_hierarchy
from repro.data.schema import Schema
from repro.transforms.multidim import HNTransform


class TestClosedForms:
    def test_single_ordinal(self):
        schema = Schema([OrdinalAttribute("A", 16)])
        assert sensitivity_of_schema(schema) == 5.0
        assert variance_factor_of_schema(schema) == 3.0

    def test_single_nominal(self):
        schema = Schema([NominalAttribute("B", two_level_hierarchy([3, 3, 3]))])
        assert sensitivity_of_schema(schema) == 3.0
        assert variance_factor_of_schema(schema) == 4.0

    def test_product_over_attributes(self, mixed_schema):
        assert sensitivity_of_schema(mixed_schema) == 4.0 * 3.0 * 3.0
        assert variance_factor_of_schema(mixed_schema) == 2.5 * 4.0 * 2.0

    def test_sa_replaces_factors(self, mixed_schema):
        assert sensitivity_of_schema(mixed_schema, ("X",)) == 9.0
        assert variance_factor_of_schema(mixed_schema, ("X",)) == 5.0 * 4.0 * 2.0

    def test_all_sa(self, mixed_schema):
        assert sensitivity_of_schema(mixed_schema, ("X", "G", "Y")) == 1.0
        assert variance_factor_of_schema(mixed_schema, ("X", "G", "Y")) == 5 * 6 * 4


class TestEmpiricalProbe:
    """Lemmas 2 and 4 and Theorem 2 verified by direct measurement."""

    def test_lemma2_haar(self):
        schema = Schema([OrdinalAttribute("A", 8)])
        measured = empirical_generalized_sensitivity(HNTransform(schema))
        assert measured == pytest.approx(4.0)  # 1 + log2 8

    def test_lemma2_haar_padded(self):
        schema = Schema([OrdinalAttribute("A", 5)])
        measured = empirical_generalized_sensitivity(HNTransform(schema))
        assert measured == pytest.approx(4.0)  # padded to 8

    def test_lemma4_nominal_balanced(self):
        schema = Schema([NominalAttribute("B", balanced_hierarchy(8, 2))])
        measured = empirical_generalized_sensitivity(HNTransform(schema))
        assert measured == pytest.approx(4.0)  # h = 4

    def test_lemma4_nominal_flat(self):
        schema = Schema([NominalAttribute("B", flat_hierarchy(9))])
        measured = empirical_generalized_sensitivity(HNTransform(schema))
        assert measured == pytest.approx(2.0)  # h = 2

    def test_theorem2_two_dimensions(self):
        schema = Schema(
            [
                OrdinalAttribute("A", 4),
                NominalAttribute("B", two_level_hierarchy([2, 2])),
            ]
        )
        hn = HNTransform(schema)
        assert empirical_generalized_sensitivity(hn) == pytest.approx(
            3.0 * 3.0
        )  # P(A)=3, h=3

    def test_subset_of_cells_is_lower_bound(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        partial = empirical_generalized_sensitivity(hn, cells=[(0, 0, 0), (4, 5, 3)])
        assert partial <= hn.generalized_sensitivity() + 1e-9
        assert partial > 0
