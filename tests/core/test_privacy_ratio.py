"""Exact differential-privacy verification on small domains.

Privelet's privacy claim (Lemma 1) is about the *noisy coefficient
vector* C* = C(M) + eta, with eta_i ~ Laplace(lambda / W_i); the noisy
matrix M* is post-processing of C*.  For a product of Laplace densities
the worst-case log-ratio between neighbouring inputs is available in
closed form::

    sup_x | log p_{C1}(x) - log p_{C2}(x) |
        = sum_i W_i |C1_i - C2_i| / lambda

so ε-DP holds iff that weighted L1 distance is at most ε·lambda for
every neighbouring pair.  These tests *enumerate all neighbouring
frequency-matrix pairs* on small domains (one entry +1, another -1 — the
effect of replacing one tuple) and assert the exact bound, with equality
attained somewhere (the calibration is tight, not slack).
"""

import itertools

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccount
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import two_level_hierarchy
from repro.data.schema import Schema
from repro.transforms.multidim import HNTransform, weight_tensor


def worst_case_log_ratio(transform: HNTransform, magnitude: float) -> float:
    """Max over neighbouring matrix pairs of the exact DP log-ratio."""
    shape = transform.input_shape
    weights = weight_tensor(transform.weight_vectors())
    cells = list(itertools.product(*(range(s) for s in shape)))
    worst = 0.0
    base = np.zeros(shape)
    for up, down in itertools.permutations(cells, 2):
        # Replacing one tuple: one cell +1, another -1 (Definition 1's
        # neighbouring tables through the frequency-matrix lens).
        delta = base.copy()
        delta[up] += 1.0
        delta[down] -= 1.0
        coefficient_change = transform.forward(delta)
        worst = max(worst, float(np.abs(coefficient_change * weights).sum()) / magnitude)
    return worst


def worst_case_single_cell_ratio(transform: HNTransform, magnitude: float) -> float:
    """Max log-ratio over single-cell unit changes (L1 distance 1).

    Definition 3 makes the generalized sensitivity tight for these, so
    the result must equal exactly rho / magnitude.
    """
    shape = transform.input_shape
    weights = weight_tensor(transform.weight_vectors())
    worst = 0.0
    delta = np.zeros(shape)
    for cell in itertools.product(*(range(s) for s in shape)):
        delta[cell] = 1.0
        change = transform.forward(delta)
        delta[cell] = 0.0
        worst = max(worst, float(np.abs(change * weights).sum()) / magnitude)
    return worst


@pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
class TestExactPrivacy:
    def test_ordinal_1d(self, epsilon):
        schema = Schema([OrdinalAttribute("A", 4)])
        account = PrivacyAccount(schema)
        transform = HNTransform(schema)
        magnitude = account.lambda_for_epsilon(epsilon)
        ratio = worst_case_log_ratio(transform, magnitude)
        # The ε guarantee holds...
        assert ratio <= epsilon + 1e-9
        # ...and Definition 3 is tight for single-cell (L1 = 1) changes:
        # the per-cell ratio is exactly rho/lambda = epsilon/2.  (For
        # +1/-1 *pairs* Lemma 1's triangle inequality is conservative —
        # shared coefficients like the base partially cancel.)
        single = worst_case_single_cell_ratio(transform, magnitude)
        assert single == pytest.approx(epsilon / 2.0)

    def test_nominal_1d(self, epsilon):
        schema = Schema([NominalAttribute("B", two_level_hierarchy([2, 2]))])
        account = PrivacyAccount(schema)
        transform = HNTransform(schema)
        magnitude = account.lambda_for_epsilon(epsilon)
        ratio = worst_case_log_ratio(transform, magnitude)
        assert ratio <= epsilon + 1e-9
        single = worst_case_single_cell_ratio(transform, magnitude)
        assert single == pytest.approx(epsilon / 2.0)

    def test_two_dimensional(self, epsilon):
        schema = Schema(
            [
                OrdinalAttribute("A", 2),
                NominalAttribute("B", two_level_hierarchy([2, 2])),
            ]
        )
        account = PrivacyAccount(schema)
        transform = HNTransform(schema)
        ratio = worst_case_log_ratio(transform, account.lambda_for_epsilon(epsilon))
        assert ratio <= epsilon + 1e-9

    def test_privelet_plus_sa(self, epsilon):
        schema = Schema(
            [
                OrdinalAttribute("A", 3),
                OrdinalAttribute("B", 4),
            ]
        )
        account = PrivacyAccount(schema, sa_names=("A",))
        transform = HNTransform(schema, sa_names=("A",))
        ratio = worst_case_log_ratio(transform, account.lambda_for_epsilon(epsilon))
        assert ratio <= epsilon + 1e-9

    def test_basic(self, epsilon):
        """Basic = identity transform everywhere: classic sensitivity 2."""
        schema = Schema([OrdinalAttribute("A", 5)])
        transform = HNTransform(schema, sa_names=("A",))
        magnitude = 2.0 / epsilon
        ratio = worst_case_log_ratio(transform, magnitude)
        assert ratio == pytest.approx(epsilon)


class TestCalibrationDirection:
    def test_larger_lambda_gives_smaller_epsilon(self):
        schema = Schema([OrdinalAttribute("A", 4)])
        transform = HNTransform(schema)
        tight = worst_case_log_ratio(transform, 10.0)
        loose = worst_case_log_ratio(transform, 1.0)
        assert tight < loose
