"""Unit tests for repro.data.schema."""

import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy
from repro.data.schema import Schema
from repro.errors import SchemaError


def make_schema():
    return Schema(
        [
            OrdinalAttribute("A", 4),
            NominalAttribute("B", flat_hierarchy(3)),
            OrdinalAttribute("C", 5),
        ]
    )


class TestSchema:
    def test_shape_and_cells(self):
        schema = make_schema()
        assert schema.shape == (4, 3, 5)
        assert schema.num_cells == 60
        assert schema.dimensions == 3

    def test_names(self):
        assert make_schema().names == ("A", "B", "C")

    def test_index_of(self):
        schema = make_schema()
        assert schema.index_of("B") == 1
        with pytest.raises(SchemaError):
            schema.index_of("Z")

    def test_axes_of(self):
        assert make_schema().axes_of(["C", "A"]) == (2, 0)

    def test_getitem_by_name_and_index(self):
        schema = make_schema()
        assert schema["B"].name == "B"
        assert schema[0].name == "A"

    def test_contains(self):
        schema = make_schema()
        assert "A" in schema
        assert "Z" not in schema

    def test_iteration(self):
        assert [a.name for a in make_schema()] == ["A", "B", "C"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([OrdinalAttribute("A", 2), OrdinalAttribute("A", 3)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_non_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not an attribute"])

    def test_validate_coordinates(self):
        schema = make_schema()
        schema.validate_coordinates((0, 2, 4))
        with pytest.raises(SchemaError):
            schema.validate_coordinates((0, 3, 0))  # B out of range
        with pytest.raises(SchemaError):
            schema.validate_coordinates((0, 0))  # wrong arity

    def test_equality(self):
        assert make_schema() == make_schema()
        assert make_schema() != Schema([OrdinalAttribute("A", 4)])

    def test_repr_mentions_kinds(self):
        text = repr(make_schema())
        assert "A[4o]" in text
        assert "B[3n]" in text
