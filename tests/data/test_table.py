"""Unit tests for repro.data.table."""

import numpy as np
import pytest

from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import SchemaError


def schema_2x3():
    return Schema([OrdinalAttribute("A", 2), OrdinalAttribute("B", 3)])


class TestTableConstruction:
    def test_round_trip(self):
        rows = [[0, 0], [1, 2], [1, 2], [0, 1]]
        table = Table(schema_2x3(), rows)
        assert table.num_rows == 4
        assert len(table) == 4

    def test_rows_are_read_only(self):
        table = Table(schema_2x3(), [[0, 0]])
        with pytest.raises(ValueError):
            table.rows[0, 0] = 1

    def test_empty_table(self):
        table = Table(schema_2x3(), [])
        assert table.num_rows == 0
        matrix = table.frequency_matrix()
        assert matrix.total == 0.0
        assert matrix.shape == (2, 3)

    def test_out_of_domain_rejected(self):
        with pytest.raises(SchemaError):
            Table(schema_2x3(), [[0, 3]])
        with pytest.raises(SchemaError):
            Table(schema_2x3(), [[-1, 0]])

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Table(schema_2x3(), [[0, 0, 0]])

    def test_from_columns(self):
        table = Table.from_columns(schema_2x3(), [np.array([0, 1]), np.array([2, 2])])
        assert table.rows.tolist() == [[0, 2], [1, 2]]

    def test_from_columns_length_mismatch(self):
        with pytest.raises(SchemaError):
            Table.from_columns(schema_2x3(), [np.array([0]), np.array([1, 2])])

    def test_from_columns_count_mismatch(self):
        with pytest.raises(SchemaError):
            Table.from_columns(schema_2x3(), [np.array([0])])


class TestFrequencyMatrixMap:
    def test_counts_match_manual(self):
        rows = [[0, 0], [1, 2], [1, 2], [0, 1]]
        matrix = Table(schema_2x3(), rows).frequency_matrix()
        expected = np.array([[1, 1, 0], [0, 0, 2]], dtype=float)
        np.testing.assert_array_equal(matrix.values, expected)

    def test_total_equals_row_count(self, mixed_table):
        assert mixed_table.frequency_matrix().total == mixed_table.num_rows

    def test_every_cell_nonnegative_integer(self, mixed_table):
        values = mixed_table.frequency_matrix().values
        assert np.all(values >= 0)
        assert np.all(values == np.rint(values))


class TestNeighbouringTables:
    def test_replace_row(self):
        table = Table(schema_2x3(), [[0, 0], [1, 1]])
        neighbour = table.replace_row(0, [1, 2])
        assert neighbour.rows.tolist() == [[1, 2], [1, 1]]
        # Original untouched.
        assert table.rows.tolist() == [[0, 0], [1, 1]]

    def test_replace_changes_two_cells_by_one(self):
        """The §II-B observation behind sensitivity 2."""
        table = Table(schema_2x3(), [[0, 0], [1, 1], [1, 2]])
        neighbour = table.replace_row(1, [0, 2])
        difference = (
            neighbour.frequency_matrix().values - table.frequency_matrix().values
        )
        nonzero = difference[difference != 0]
        assert sorted(nonzero.tolist()) == [-1.0, 1.0]

    def test_replace_same_value_changes_nothing(self):
        table = Table(schema_2x3(), [[0, 0]])
        neighbour = table.replace_row(0, [0, 0])
        assert (
            neighbour.frequency_matrix().l1_distance(table.frequency_matrix()) == 0.0
        )

    def test_replace_row_bounds(self):
        table = Table(schema_2x3(), [[0, 0]])
        with pytest.raises(SchemaError):
            table.replace_row(5, [0, 0])
        with pytest.raises(SchemaError):
            table.replace_row(0, [0, 9])
