"""Unit tests for the §VII-B uniform timing-dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic import domain_size_for_cells, generate_uniform_table, timing_schema


class TestDomainSizing:
    def test_fourth_root(self):
        assert domain_size_for_cells(2**16) == 16
        assert domain_size_for_cells(2**20) == 32

    def test_even_and_minimum(self):
        assert domain_size_for_cells(1) == 4
        assert domain_size_for_cells(700) % 2 == 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            domain_size_for_cells(0)


class TestTimingSchema:
    def test_shape(self):
        schema = timing_schema(16)
        assert schema.shape == (16, 16, 16, 16)
        assert [a.is_ordinal for a in schema] == [True, True, False, False]

    def test_hierarchies_are_three_level(self):
        """§VII-B: nominal hierarchies have 3 levels, sqrt(|A|) middle nodes."""
        schema = timing_schema(16)
        hierarchy = schema["N1"].hierarchy
        assert hierarchy.height == 3
        assert hierarchy.fanout(0) == 4  # sqrt(16)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            timing_schema(2)


class TestGeneration:
    def test_row_count_and_uniformity(self):
        table = generate_uniform_table(8000, 2**16, seed=5)
        assert table.num_rows == 8000
        counts = np.bincount(table.rows[:, 0], minlength=16)
        # Uniform: every value of a 16-ary attribute gets roughly n/16.
        assert counts.min() > 8000 / 16 * 0.6
        assert counts.max() < 8000 / 16 * 1.4

    def test_matrix_cells_close_to_request(self):
        table = generate_uniform_table(100, 2**16, seed=5)
        assert table.schema.num_cells == 2**16

    def test_deterministic(self):
        a = generate_uniform_table(100, 2**16, seed=9)
        b = generate_uniform_table(100, 2**16, seed=9)
        np.testing.assert_array_equal(a.rows, b.rows)
