"""Unit tests for repro.data.attributes."""

import math

import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy, two_level_hierarchy
from repro.errors import SchemaError


class TestOrdinal:
    def test_basic_properties(self):
        age = OrdinalAttribute("Age", 101)
        assert age.name == "Age"
        assert age.size == 101
        assert age.is_ordinal
        assert not age.is_nominal

    def test_padded_size(self):
        assert OrdinalAttribute("A", 101).padded_size == 128
        assert OrdinalAttribute("A", 128).padded_size == 128
        assert OrdinalAttribute("A", 1).padded_size == 1

    def test_sensitivity_factor_is_one_plus_log(self):
        # P(A) = 1 + log2(padded |A|): for 101 -> padded 128 -> P = 8
        assert OrdinalAttribute("A", 101).sensitivity_factor() == 8.0
        assert OrdinalAttribute("A", 16).sensitivity_factor() == 5.0

    def test_variance_factor(self):
        # H(A) = (2 + log2 |A|)/2: for 16 -> 3
        assert OrdinalAttribute("A", 16).variance_factor() == 3.0
        assert OrdinalAttribute("A", 101).variance_factor() == 4.5

    def test_labels_validated(self):
        with pytest.raises(SchemaError):
            OrdinalAttribute("A", 3, labels=["x", "y"])
        attr = OrdinalAttribute("A", 2, labels=["lo", "hi"])
        assert attr.labels == ["lo", "hi"]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            OrdinalAttribute("A", 0)
        with pytest.raises(TypeError):
            OrdinalAttribute("A", 2.5)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            OrdinalAttribute("", 4)

    def test_equality_and_hash(self):
        assert OrdinalAttribute("A", 4) == OrdinalAttribute("A", 4)
        assert OrdinalAttribute("A", 4) != OrdinalAttribute("A", 5)
        assert hash(OrdinalAttribute("A", 4)) == hash(OrdinalAttribute("A", 4))


class TestNominal:
    def test_basic_properties(self):
        attr = NominalAttribute("G", two_level_hierarchy([3, 3]))
        assert attr.size == 6
        assert attr.is_nominal
        assert attr.height == 3

    def test_sensitivity_factor_is_height(self):
        attr = NominalAttribute("G", two_level_hierarchy([3, 3]))
        assert attr.sensitivity_factor() == 3.0

    def test_variance_factor_is_four(self):
        attr = NominalAttribute("G", flat_hierarchy(10))
        assert attr.variance_factor() == 4.0

    def test_with_flat_hierarchy(self):
        attr = NominalAttribute.with_flat_hierarchy("G", 7)
        assert attr.size == 7
        assert attr.height == 2

    def test_requires_hierarchy(self):
        with pytest.raises(SchemaError):
            NominalAttribute("G", "not a hierarchy")

    def test_labels(self):
        attr = NominalAttribute("G", flat_hierarchy(["x", "y", "z"]))
        assert attr.labels() == ["x", "y", "z"]


class TestSaSelectionRule:
    """§VI-D: A goes to SA iff |A| <= P(A)^2 * H(A)."""

    def test_small_ordinal_favours_direct(self):
        # |A|=16: P^2 H = 25*3 = 75 >= 16
        assert OrdinalAttribute("A", 16).favours_direct_release()

    def test_large_ordinal_favours_wavelet(self):
        # |A|=1001 -> padded 1024: P=11, H=6 -> 726 < 1001
        assert not OrdinalAttribute("Income", 1001).favours_direct_release()

    def test_age_and_gender_favour_direct(self):
        # The paper's SA = {Age, Gender} choice (§VII-A).
        assert OrdinalAttribute("Age", 101).favours_direct_release()
        assert NominalAttribute("Gender", flat_hierarchy(2)).favours_direct_release()

    def test_occupation_favours_wavelet(self):
        occupation = NominalAttribute("Occupation", two_level_hierarchy([32] * 16))
        assert occupation.size == 512
        # h=3: P^2 H = 9*4 = 36 < 512
        assert not occupation.favours_direct_release()

    def test_paper_arithmetic(self):
        # §V-D: Occupation m=512 h=3 -> P=3, H=4.
        occ = NominalAttribute("Occupation", two_level_hierarchy([32] * 16))
        assert occ.sensitivity_factor() == 3.0
        assert occ.variance_factor() == 4.0
        assert math.isclose(
            OrdinalAttribute("A", 512).sensitivity_factor(), 10.0
        )  # 1 + log2 512
