"""Unit tests for the synthetic census generator (Table III stand-in)."""

import numpy as np
import pytest

from repro.data.census import BRAZIL, US, census_schema, generate_census_table


class TestSpecs:
    def test_table3_brazil(self):
        """Domain sizes of Table III, Brazil row."""
        schema = census_schema(BRAZIL)
        assert schema.names == ("Age", "Gender", "Occupation", "Income")
        assert schema.shape == (101, 2, 512, 1001)
        assert schema["Gender"].height == 2
        assert schema["Occupation"].height == 3

    def test_table3_us(self):
        """Domain sizes of Table III, US row."""
        schema = census_schema(US)
        assert schema.shape == (96, 2, 511, 1020)
        assert schema["Gender"].height == 2
        assert schema["Occupation"].height == 3

    def test_attribute_kinds(self):
        schema = census_schema(BRAZIL)
        assert schema["Age"].is_ordinal
        assert schema["Income"].is_ordinal
        assert schema["Gender"].is_nominal
        assert schema["Occupation"].is_nominal

    def test_scaling_shrinks_large_domains_only(self):
        scaled = BRAZIL.scaled(0.25)
        assert scaled.age_size == BRAZIL.age_size
        assert scaled.gender_size == BRAZIL.gender_size
        assert scaled.occupation_size == 128
        assert scaled.income_size < BRAZIL.income_size
        assert scaled.default_rows < BRAZIL.default_rows

    def test_scale_one_is_identity(self):
        assert BRAZIL.scaled(1.0) is BRAZIL

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            BRAZIL.scaled(0.0)
        with pytest.raises(ValueError):
            BRAZIL.scaled(1.5)

    def test_scaled_hierarchy_height_preserved(self):
        schema = census_schema(BRAZIL.scaled(0.1))
        assert schema["Occupation"].height == 3
        assert schema["Gender"].height == 2


class TestGeneration:
    def test_row_count_and_domains(self):
        spec = BRAZIL.scaled(0.05)
        table = generate_census_table(spec, 5000, seed=7)
        assert table.num_rows == 5000
        rows = table.rows
        for axis, attr in enumerate(table.schema):
            assert rows[:, axis].min() >= 0
            assert rows[:, axis].max() < attr.size

    def test_deterministic_with_seed(self):
        spec = BRAZIL.scaled(0.05)
        a = generate_census_table(spec, 1000, seed=3)
        b = generate_census_table(spec, 1000, seed=3)
        np.testing.assert_array_equal(a.rows, b.rows)

    def test_different_seeds_differ(self):
        spec = BRAZIL.scaled(0.05)
        a = generate_census_table(spec, 1000, seed=3)
        b = generate_census_table(spec, 1000, seed=4)
        assert not np.array_equal(a.rows, b.rows)

    def test_marginals_are_skewed(self):
        """Occupation should be Zipf-like: the head dominates the tail."""
        spec = BRAZIL.scaled(0.1)
        table = generate_census_table(spec, 20_000, seed=11)
        occupation = table.rows[:, 2]
        counts = np.bincount(occupation, minlength=spec.occupation_size)
        head = counts[: spec.occupation_size // 10].sum()
        assert head > table.num_rows * 0.3

    def test_income_correlates_with_age(self):
        spec = BRAZIL.scaled(0.1)
        table = generate_census_table(spec, 20_000, seed=13)
        age = table.rows[:, 0].astype(float)
        income = table.rows[:, 3].astype(float)
        correlation = np.corrcoef(age, income)[0, 1]
        assert correlation > 0.1

    def test_default_rows_used_when_omitted(self):
        spec = BRAZIL.scaled(0.01)
        table = generate_census_table(spec, seed=1)
        assert table.num_rows == spec.default_rows
