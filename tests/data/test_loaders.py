"""Tests for CSV ingestion and export."""

import numpy as np
import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy
from repro.data.loaders import load_table_csv, save_table_csv
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import SchemaError


@pytest.fixture
def labelled_schema():
    return Schema(
        [
            OrdinalAttribute("Age", 3, labels=["young", "middle", "old"]),
            NominalAttribute("Country", flat_hierarchy(["US", "Canada", "Brazil"])),
            OrdinalAttribute("Score", 5),
        ]
    )


class TestRoundTrip:
    def test_labels(self, labelled_schema, tmp_path):
        table = Table(labelled_schema, [[0, 2, 4], [2, 0, 0], [1, 1, 3]])
        path = tmp_path / "t.csv"
        save_table_csv(path, table)
        loaded = load_table_csv(path, labelled_schema)
        np.testing.assert_array_equal(loaded.rows, table.rows)

    def test_codes(self, labelled_schema, tmp_path):
        table = Table(labelled_schema, [[0, 2, 4]])
        path = tmp_path / "t.csv"
        save_table_csv(path, table, use_labels=False)
        text = path.read_text()
        assert "young" not in text
        loaded = load_table_csv(path, labelled_schema)
        np.testing.assert_array_equal(loaded.rows, table.rows)

    def test_label_content(self, labelled_schema, tmp_path):
        table = Table(labelled_schema, [[1, 2, 0]])
        path = tmp_path / "t.csv"
        save_table_csv(path, table)
        assert "middle,Brazil,0" in path.read_text()

    def test_empty_table(self, labelled_schema, tmp_path):
        path = tmp_path / "empty.csv"
        save_table_csv(path, Table(labelled_schema, []))
        loaded = load_table_csv(path, labelled_schema)
        assert loaded.num_rows == 0


class TestLoading:
    def test_column_order_free(self, labelled_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("Score,Country,Age,Extra\n4,US,old,ignored\n")
        loaded = load_table_csv(path, labelled_schema)
        np.testing.assert_array_equal(loaded.rows, [[2, 0, 4]])

    def test_missing_column(self, labelled_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("Age,Country\nyoung,US\n")
        with pytest.raises(SchemaError, match="missing columns"):
            load_table_csv(path, labelled_schema)

    def test_bad_value_reports_line(self, labelled_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("Age,Country,Score\nyoung,US,0\nyoung,Mars,0\n")
        with pytest.raises(SchemaError, match=":3:"):
            load_table_csv(path, labelled_schema)

    def test_out_of_range_code(self, labelled_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("Age,Country,Score\n0,0,99\n")
        with pytest.raises(SchemaError):
            load_table_csv(path, labelled_schema)

    def test_empty_file(self, labelled_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty file"):
            load_table_csv(path, labelled_schema)

    def test_full_pipeline_from_csv(self, labelled_schema, tmp_path):
        """CSV -> table -> publish -> query: the realistic ingestion path."""
        from repro.core.privelet_plus import PriveletPlusMechanism
        from repro.queries.workload import generate_workload
        from repro.queries.oracle import RangeSumOracle

        rng = np.random.default_rng(0)
        rows = np.stack(
            [rng.integers(0, a.size, 200) for a in labelled_schema], axis=1
        )
        path = tmp_path / "data.csv"
        save_table_csv(path, Table(labelled_schema, rows))
        table = load_table_csv(path, labelled_schema)
        result = PriveletPlusMechanism(sa_names="auto").publish(table, 1.0, seed=1)
        queries = generate_workload(labelled_schema, 20, seed=2)
        answers = RangeSumOracle(result.matrix).answer_all(queries)
        assert np.isfinite(answers).all()
