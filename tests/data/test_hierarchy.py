"""Unit tests for repro.data.hierarchy."""

import numpy as np
import pytest

from repro.data.hierarchy import (
    Hierarchy,
    Node,
    balanced_hierarchy,
    flat_hierarchy,
    hierarchy_from_spec,
    two_level_hierarchy,
)
from repro.errors import HierarchyError


class TestConstruction:
    def test_flat_hierarchy_counts(self):
        h = flat_hierarchy(5)
        assert h.num_leaves == 5
        assert h.num_nodes == 6  # root + 5 leaves
        assert h.num_internal_nodes == 1
        assert h.height == 2

    def test_flat_hierarchy_from_labels(self):
        h = flat_hierarchy(["a", "b", "c"])
        assert h.leaf_labels() == ["a", "b", "c"]

    def test_flat_hierarchy_rejects_single_leaf(self):
        with pytest.raises(HierarchyError):
            flat_hierarchy(1)

    def test_two_level_counts(self):
        h = two_level_hierarchy([3, 3])
        assert h.num_leaves == 6
        assert h.num_nodes == 9
        assert h.height == 3

    def test_two_level_rejects_tiny_groups(self):
        with pytest.raises(HierarchyError):
            two_level_hierarchy([1, 5])

    def test_two_level_rejects_single_group(self):
        with pytest.raises(HierarchyError):
            two_level_hierarchy([4])

    def test_balanced_binary(self):
        h = balanced_hierarchy(8, 2)
        assert h.num_leaves == 8
        assert h.height == 4
        assert h.num_nodes == 15

    def test_balanced_rejects_non_power(self):
        with pytest.raises(HierarchyError):
            balanced_hierarchy(6, 2)

    def test_balanced_rejects_fanout_one(self):
        with pytest.raises(HierarchyError):
            balanced_hierarchy(4, 1)

    def test_fanout_one_internal_node_rejected(self):
        root = Node("Any")
        only = root.add("only-child-parent")
        only.add("leaf")
        # root has fanout 1 -> rejected before the weight function divides
        # by zero
        with pytest.raises(HierarchyError):
            Hierarchy(root)

    def test_single_node_hierarchy_allowed(self):
        h = Hierarchy(Node("v"))
        assert h.num_leaves == 1
        assert h.num_nodes == 1
        assert h.height == 1


class TestFromSpec:
    def test_figure1_countries(self):
        """The paper's Figure 1 hierarchy, from a nested spec."""
        hierarchy = hierarchy_from_spec(
            {
                "North America": ["USA", "Canada"],
                "South America": ["Brazil", "Argentina"],
            }
        )
        assert hierarchy.height == 3
        assert hierarchy.leaf_labels() == ["USA", "Canada", "Brazil", "Argentina"]
        na = hierarchy.find("North America")
        assert hierarchy.leaf_interval(na) == (0, 2)

    def test_flat_spec(self):
        hierarchy = hierarchy_from_spec(["a", "b", "c"])
        assert hierarchy.height == 2
        assert hierarchy.num_leaves == 3

    def test_mixed_depths(self):
        hierarchy = hierarchy_from_spec({"grouped": ["x", "y"], "also": ["p", "q"]})
        assert hierarchy.num_nodes == 7

    def test_numbers_as_leaves(self):
        hierarchy = hierarchy_from_spec([1, 2, 3])
        assert hierarchy.leaf_labels() == ["1", "2", "3"]

    def test_rejects_nested_sequences(self):
        with pytest.raises(HierarchyError):
            hierarchy_from_spec([["a", "b"], ["c"]])

    def test_rejects_scalar_spec(self):
        with pytest.raises(HierarchyError):
            hierarchy_from_spec("just-a-string-is-ambiguous")

    def test_fanout_rule_still_enforced(self):
        with pytest.raises(HierarchyError):
            hierarchy_from_spec({"only": ["a", "b"]})  # root fanout 1


class TestLevelOrder:
    def test_root_is_node_zero(self, figure3_hierarchy):
        assert figure3_hierarchy.root_id == 0
        assert figure3_hierarchy.parent(0) == -1
        assert figure3_hierarchy.level(0) == 1

    def test_levels_monotone(self, unbalanced_hierarchy):
        levels = unbalanced_hierarchy.level_array
        assert np.all(np.diff(levels) >= 0)

    def test_children_contiguous(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        for node_id in range(h.num_nodes):
            kids = list(h.children(node_id))
            if kids:
                assert kids == list(range(kids[0], kids[-1] + 1))
                for kid in kids:
                    assert h.parent(kid) == node_id

    def test_level_slices_partition_nodes(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        seen = []
        for level in range(1, h.height + 1):
            sl = h.level_slice(level)
            seen.extend(range(sl.start, sl.stop))
        assert seen == list(range(h.num_nodes))

    def test_level_slice_out_of_range(self, figure3_hierarchy):
        with pytest.raises(HierarchyError):
            figure3_hierarchy.level_slice(0)
        with pytest.raises(HierarchyError):
            figure3_hierarchy.level_slice(99)


class TestLeafIntervals:
    def test_root_covers_domain(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        assert h.leaf_interval(0) == (0, h.num_leaves)

    def test_leaf_intervals_have_width_one(self, figure3_hierarchy):
        h = figure3_hierarchy
        for leaf_index in range(h.num_leaves):
            node_id = h.node_id_of_leaf(leaf_index)
            assert h.leaf_interval(node_id) == (leaf_index, leaf_index + 1)

    def test_children_partition_parent_interval(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        for node_id in range(h.num_nodes):
            kids = list(h.children(node_id))
            if not kids:
                continue
            lo, hi = h.leaf_interval(node_id)
            child_intervals = sorted(h.leaf_interval(k) for k in kids)
            assert child_intervals[0][0] == lo
            assert child_intervals[-1][1] == hi
            for (a_lo, a_hi), (b_lo, b_hi) in zip(child_intervals, child_intervals[1:]):
                assert a_hi == b_lo  # contiguous, non-overlapping

    def test_leaf_index_roundtrip(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        for leaf_index in range(h.num_leaves):
            assert h.leaf_index(h.node_id_of_leaf(leaf_index)) == leaf_index

    def test_leaf_index_rejects_internal(self, figure3_hierarchy):
        with pytest.raises(HierarchyError):
            figure3_hierarchy.leaf_index(0)

    def test_node_id_of_leaf_bounds(self, figure3_hierarchy):
        with pytest.raises(HierarchyError):
            figure3_hierarchy.node_id_of_leaf(-1)
        with pytest.raises(HierarchyError):
            figure3_hierarchy.node_id_of_leaf(6)


class TestSiblingGroups:
    def test_groups_cover_non_root_nodes(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        covered = []
        for group in h.sibling_groups():
            covered.extend(range(group.start, group.stop))
        assert sorted(covered) == list(range(1, h.num_nodes))

    def test_group_members_share_parent(self, unbalanced_hierarchy):
        h = unbalanced_hierarchy
        for group in h.sibling_groups():
            parents = {h.parent(i) for i in range(group.start, group.stop)}
            assert len(parents) == 1

    def test_figure3_groups(self, figure3_hierarchy):
        groups = figure3_hierarchy.sibling_groups()
        spans = [(g.start, g.stop) for g in groups]
        assert spans == [(1, 3), (3, 6), (6, 9)]


class TestHeightBound:
    def test_balanced_hierarchies_attain_the_bound(self):
        from repro.data.hierarchy import uniform_depth_height_bound

        for leaves, fanout in [(8, 2), (16, 2), (27, 3)]:
            hierarchy = balanced_hierarchy(leaves, fanout)
            assert hierarchy.height <= uniform_depth_height_bound(leaves)
        assert balanced_hierarchy(16, 2).height == uniform_depth_height_bound(16)

    def test_flat_hierarchy_below_bound(self):
        from repro.data.hierarchy import uniform_depth_height_bound

        assert flat_hierarchy(100).height <= uniform_depth_height_bound(100)

    def test_single_leaf(self):
        from repro.data.hierarchy import uniform_depth_height_bound

        assert uniform_depth_height_bound(1) == 1


class TestAccessors:
    def test_find_by_label(self, figure3_hierarchy):
        assert figure3_hierarchy.find("Any") == 0
        node = figure3_hierarchy.find("v4")
        assert figure3_hierarchy.is_leaf(node)

    def test_find_missing(self, figure3_hierarchy):
        with pytest.raises(HierarchyError):
            figure3_hierarchy.find("nope")

    def test_fanouts(self, figure3_hierarchy):
        assert figure3_hierarchy.fanout(0) == 2
        assert figure3_hierarchy.fanout(1) == 3
        assert figure3_hierarchy.fanout(figure3_hierarchy.find("v1")) == 0

    def test_repr(self, figure3_hierarchy):
        assert "leaves=6" in repr(figure3_hierarchy)

    def test_non_root_node_ids(self, figure3_hierarchy):
        ids = figure3_hierarchy.non_root_node_ids()
        assert ids.tolist() == list(range(1, 9))

    def test_validate_passes(self, unbalanced_hierarchy):
        unbalanced_hierarchy.validate()

    def test_len(self, figure3_hierarchy):
        assert len(figure3_hierarchy) == 9
