"""Unit tests for repro.data.frequency."""

import numpy as np
import pytest

from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import SchemaError


def schema_3x4():
    return Schema([OrdinalAttribute("A", 3), OrdinalAttribute("B", 4)])


class TestFrequencyMatrix:
    def test_shape_must_match_schema(self):
        with pytest.raises(SchemaError):
            FrequencyMatrix(schema_3x4(), np.zeros((3, 3)))

    def test_zeros(self):
        matrix = FrequencyMatrix.zeros(schema_3x4())
        assert matrix.total == 0.0
        assert matrix.num_cells == 12

    def test_copy_is_independent(self):
        matrix = FrequencyMatrix.zeros(schema_3x4())
        clone = matrix.copy()
        clone.values[0, 0] = 7.0
        assert matrix.values[0, 0] == 0.0

    def test_perturb_cell(self):
        matrix = FrequencyMatrix.zeros(schema_3x4())
        bumped = matrix.perturb_cell((1, 2), 2.5)
        assert bumped.values[1, 2] == 2.5
        assert matrix.values[1, 2] == 0.0
        assert matrix.l1_distance(bumped) == 2.5

    def test_perturb_cell_validates(self):
        matrix = FrequencyMatrix.zeros(schema_3x4())
        with pytest.raises(SchemaError):
            matrix.perturb_cell((3, 0), 1.0)

    def test_l1_distance(self):
        a = FrequencyMatrix.zeros(schema_3x4())
        b = a.perturb_cell((0, 0), 1.0).perturb_cell((2, 3), -2.0)
        assert a.l1_distance(b) == 3.0

    def test_l1_distance_shape_mismatch(self):
        a = FrequencyMatrix.zeros(schema_3x4())
        b = FrequencyMatrix.zeros(Schema([OrdinalAttribute("A", 2)]))
        with pytest.raises(SchemaError):
            a.l1_distance(b)

    def test_range_sum(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        matrix = FrequencyMatrix(schema_3x4(), values)
        assert matrix.range_sum([(0, 3), (0, 4)]) == values.sum()
        assert matrix.range_sum([(1, 2), (1, 3)]) == values[1, 1:3].sum()
        assert matrix.range_sum([(0, 0), (0, 4)]) == 0.0  # empty range

    def test_range_sum_bounds(self):
        matrix = FrequencyMatrix.zeros(schema_3x4())
        with pytest.raises(SchemaError):
            matrix.range_sum([(0, 4), (0, 4)])
        with pytest.raises(SchemaError):
            matrix.range_sum([(0, 3)])

    def test_repr(self):
        assert "shape=(3, 4)" in repr(FrequencyMatrix.zeros(schema_3x4()))
