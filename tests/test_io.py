"""Tests for result persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, census_schema
from repro.errors import ReproError
from repro.io import (
    ResultHandle,
    load_result,
    open_result,
    save_result,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_census_schema(self):
        schema = census_schema(BRAZIL.scaled(0.05))
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.names == schema.names
        assert rebuilt.shape == schema.shape
        for original, copy in zip(schema, rebuilt):
            assert original.is_ordinal == copy.is_ordinal
            if original.is_nominal:
                assert copy.hierarchy.height == original.hierarchy.height
                assert copy.hierarchy.num_nodes == original.hierarchy.num_nodes
                # Leaf order (and hence the coded domain) is preserved.
                assert copy.hierarchy.leaf_labels() == original.hierarchy.leaf_labels()

    def test_mixed_schema(self, mixed_schema):
        rebuilt = schema_from_dict(schema_to_dict(mixed_schema))
        assert rebuilt.shape == mixed_schema.shape

    def test_version_checked(self, mixed_schema):
        payload = schema_to_dict(mixed_schema)
        payload["version"] = 99
        with pytest.raises(ReproError):
            schema_from_dict(payload)

    def test_unknown_kind_rejected(self, mixed_schema):
        payload = schema_to_dict(mixed_schema)
        payload["attributes"][0]["kind"] = "mystery"
        with pytest.raises(ReproError):
            schema_from_dict(payload)


class TestResultRoundTrip:
    def test_basic_result(self, mixed_table, tmp_path):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=1)
        path = tmp_path / "basic.npz"
        save_result(path, result)
        loaded = load_result(path)
        np.testing.assert_array_equal(loaded.matrix.values, result.matrix.values)
        assert loaded.epsilon == result.epsilon
        assert loaded.noise_magnitude == result.noise_magnitude
        assert loaded.variance_bound == result.variance_bound

    def test_privelet_plus_result_with_hierarchies(self, mixed_table, tmp_path):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(mixed_table, 0.5, seed=2)
        path = tmp_path / "plus.npz"
        save_result(path, result)
        loaded = load_result(path)
        np.testing.assert_allclose(loaded.matrix.values, result.matrix.values)
        assert loaded.matrix.schema.shape == mixed_table.schema.shape
        assert tuple(loaded.details["sa"]) == ("X",)

    def test_queries_work_on_loaded_result(self, mixed_table, tmp_path):
        from repro.queries.oracle import RangeSumOracle
        from repro.queries.workload import generate_workload

        result = PriveletPlusMechanism(sa_names=()).publish(mixed_table, 1.0, seed=3)
        path = tmp_path / "q.npz"
        save_result(path, result)
        loaded = load_result(path)
        queries = generate_workload(loaded.matrix.schema, 30, seed=4)
        original = RangeSumOracle(result.matrix).answer_all(
            generate_workload(mixed_table.schema, 30, seed=4)
        )
        reloaded = RangeSumOracle(loaded.matrix).answer_all(queries)
        np.testing.assert_allclose(reloaded, original)

    def test_corrupt_archive_rejected(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ReproError):
            load_result(path)

    def test_coefficient_result_round_trip(self, mixed_table, tmp_path):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(
            mixed_table, 1.0, seed=7, materialize=False
        )
        path = tmp_path / "coeff.npz"
        save_result(path, result)
        loaded = load_result(path)
        assert loaded.representation == "coefficients"
        assert loaded.release.sa_names == ("X",)
        np.testing.assert_array_equal(
            loaded.release.coefficients, result.release.coefficients
        )
        # Materialization after reload equals the in-memory one.
        np.testing.assert_allclose(loaded.matrix.values, result.matrix.values)

    def test_unknown_format_version_rejected(self, mixed_table, tmp_path):
        import json

        result = BasicMechanism().publish(mixed_table, 1.0, seed=1)
        path = tmp_path / "future.npz"
        save_result(path, result)
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            values = archive["values"]
        header["format"] = 99
        bumped = tmp_path / "bumped.npz"
        np.savez_compressed(
            bumped,
            values=values,
            header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )
        with pytest.raises(ReproError):
            load_result(bumped)


class TestResultHandle:
    @pytest.fixture
    def coefficient_archive(self, mixed_table, tmp_path):
        result = PriveletPlusMechanism(sa_names=("X",)).publish(
            mixed_table, 1.0, seed=7, materialize=False
        )
        path = tmp_path / "coeff.npz"
        save_result(path, result)
        return path, result

    def test_header_without_payload(self, coefficient_archive):
        path, result = coefficient_archive
        handle = open_result(path)
        assert isinstance(handle, ResultHandle)
        assert not handle.loaded
        assert handle.representation == "coefficients"
        assert handle.epsilon == 1.0
        assert handle.schema() == result.release.schema
        assert not handle.loaded  # header reads never load the payload

    def test_load_is_cached(self, coefficient_archive):
        path, result = coefficient_archive
        handle = open_result(path)
        loaded = handle.load()
        assert handle.loaded
        assert handle.load() is loaded
        np.testing.assert_array_equal(
            loaded.release.coefficients, result.release.coefficients
        )

    def test_v1_archive_defaults_to_dense(self, mixed_table, tmp_path):
        result = BasicMechanism().publish(mixed_table, 1.0, seed=3)
        path = tmp_path / "dense.npz"
        save_result(path, result)
        handle = open_result(path)
        assert handle.representation == "dense"
        assert handle.load().representation == "dense"

    def test_missing_file_fails_fast(self, tmp_path):
        with pytest.raises(ReproError, match="no such archive"):
            open_result(tmp_path / "absent.npz")

    def test_non_archive_fails_fast(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(ReproError, match="not a repro result archive"):
            open_result(path)

    def test_truncated_zip_fails_fast(self, tmp_path):
        """Zip magic followed by garbage (a truncated download) raises
        BadZipFile inside numpy; it must surface as ReproError."""
        path = tmp_path / "truncated.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 40)
        with pytest.raises(ReproError, match="not a repro result archive"):
            open_result(path)

    def test_repr_shows_laziness(self, coefficient_archive):
        path, _ = coefficient_archive
        handle = open_result(path)
        assert "lazy" in repr(handle)
        handle.load()
        assert "loaded" in repr(handle)


class TestShardedArchives:
    """v3 archives: manifest + per-shard entries, shard-lazy loading."""

    @pytest.fixture
    def sharded_result(self, mixed_table):
        from repro.core.sharding import publish_sharded

        return publish_sharded(
            mixed_table,
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            shard_by="X",
            shards=3,
            seed=5,
            materialize=False,
        )

    def test_round_trip_preserves_answers(self, sharded_result, tmp_path):
        from repro.queries.engine import QueryEngine
        from repro.queries.workload import generate_workload

        path = tmp_path / "sharded.npz"
        save_result(path, sharded_result)
        loaded = load_result(path)
        assert loaded.representation == "sharded"
        assert loaded.release.bounds == sharded_result.release.bounds
        assert loaded.details == sharded_result.details
        queries = generate_workload(sharded_result.release.schema, 30, seed=1)
        np.testing.assert_allclose(
            QueryEngine(loaded).answer_all(queries),
            QueryEngine(sharded_result).answer_all(queries),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            QueryEngine(loaded).noise_variances(queries),
            QueryEngine(sharded_result).noise_variances(queries),
            rtol=1e-12,
        )

    def test_loading_is_shard_lazy(self, sharded_result, tmp_path):
        path = tmp_path / "sharded.npz"
        save_result(path, sharded_result)
        loaded = load_result(path)
        release = loaded.release
        assert release.shards_loaded == 0
        # Exact variances never need a payload.
        lows = np.zeros((1, 3), dtype=np.int64)
        highs = np.asarray([list(release.schema.shape)], dtype=np.int64)
        assert release.noise_variances_boxes(lows, highs)[0] > 0
        assert release.shards_loaded == 0
        # A query clipped to the first shard loads only that shard.
        narrow_highs = highs.copy()
        narrow_highs[0, 0] = release.bounds[1]
        release.answer_boxes(lows, narrow_highs)
        assert release.shards_loaded == 1
        release.answer_boxes(lows, highs)
        assert release.shards_loaded == release.num_shards

    def test_open_result_reads_manifest_only(self, sharded_result, tmp_path):
        path = tmp_path / "sharded.npz"
        save_result(path, sharded_result)
        handle = open_result(path)
        assert handle.representation == "sharded"
        assert handle.epsilon == 1.0
        assert handle.schema().shape == sharded_result.release.schema.shape
        assert not handle.loaded
        assert handle.load().release.shards_loaded == 0

    def test_mixed_representation_shards_round_trip(self, mixed_table, tmp_path):
        from repro.core.release import convert_result
        from repro.core.sharding import ShardedRelease, publish_sharded
        from repro.queries.engine import QueryEngine
        from repro.queries.workload import generate_workload

        result = publish_sharded(
            mixed_table,
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            shard_by="X",
            shards=2,
            seed=9,
            materialize=False,
        )
        release = result.release
        mixed = ShardedRelease(
            release.schema,
            release.attribute,
            release.bounds,
            [
                convert_result(release.shard_result(0), "dense"),
                release.shard_result(1),
            ],
        )
        import dataclasses

        mixed_result = dataclasses.replace(result, release=mixed)
        path = tmp_path / "mixed.npz"
        save_result(path, mixed_result)
        loaded = load_result(path)
        assert loaded.release.shard_result(0).representation == "dense"
        assert loaded.release.shard_result(1).representation == "coefficients"
        queries = generate_workload(release.schema, 20, seed=2)
        np.testing.assert_allclose(
            QueryEngine(loaded).answer_all(queries),
            QueryEngine(result).answer_all(queries),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_missing_shard_member_rejected(self, sharded_result, tmp_path):
        import zipfile

        path = tmp_path / "sharded.npz"
        save_result(path, sharded_result)
        clipped = tmp_path / "clipped.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(clipped, "w") as dst:
            for name in src.namelist():
                if name != "shard1_coefficients.npy":
                    dst.writestr(name, src.read(name))
        with pytest.raises(ReproError, match="missing members"):
            load_result(clipped)


class TestStreamArchives:
    """v4 archives: append-able tree nodes + versioned manifests."""

    @pytest.fixture
    def stream_publisher(self, tmp_path):
        from repro.data.census import generate_census_table
        from repro.streaming import StreamingPublisher

        spec = BRAZIL.scaled(0.05)
        publisher = StreamingPublisher(
            census_schema(spec),
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            seed=13,
            archive_path=tmp_path / "stream.npz",
        )
        for epoch in range(5):
            publisher.ingest(generate_census_table(spec, 150, seed=40 + epoch))
            publisher.advance_epoch()
        return publisher

    def test_round_trip_preserves_answers_and_variances(self, stream_publisher):
        from repro.queries.engine import QueryEngine
        from repro.queries.workload import generate_workload

        loaded = load_result(stream_publisher.archive_path)
        assert loaded.representation == "stream"
        assert loaded.release.epochs == 5
        assert loaded.details["stream"] is True
        queries = generate_workload(loaded.release.schema, 25, seed=1)
        np.testing.assert_allclose(
            QueryEngine(loaded).answer_all(queries),
            QueryEngine(stream_publisher.result()).answer_all(queries),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            QueryEngine(loaded).noise_variances(queries),
            QueryEngine(stream_publisher.result()).noise_variances(queries),
            rtol=1e-12,
        )

    def test_loading_is_node_lazy(self, stream_publisher):
        loaded = load_result(stream_publisher.archive_path)
        release = loaded.release
        assert release.nodes_loaded == 0
        # Exact variances never need a payload.
        lows = np.zeros((1, release.schema.dimensions), dtype=np.int64)
        highs = np.asarray([list(release.schema.shape)], dtype=np.int64)
        assert release.noise_variances_boxes(lows, highs)[0] > 0
        assert release.nodes_loaded == 0
        # A full-window query loads only the canonical cover, not all
        # 2T-1 nodes.
        release.answer_boxes(lows, highs)
        assert release.nodes_loaded == len(release.cover) < release.num_nodes

    def test_snapshot_save_result_round_trips(self, stream_publisher, tmp_path):
        from repro.queries.engine import QueryEngine
        from repro.queries.workload import generate_workload

        snapshot = tmp_path / "snapshot.npz"
        save_result(snapshot, stream_publisher.result())
        loaded = load_result(snapshot)
        assert loaded.release.epochs == 5
        queries = generate_workload(loaded.release.schema, 20, seed=2)
        np.testing.assert_allclose(
            QueryEngine(loaded).answer_all(queries),
            QueryEngine(stream_publisher.result()).answer_all(queries),
            rtol=1e-12,
        )

    def test_open_result_reads_header_only(self, stream_publisher):
        handle = open_result(stream_publisher.archive_path)
        assert handle.representation == "stream"
        assert handle.epsilon == 1.0
        assert not handle.loaded
        assert handle.load().release.nodes_loaded == 0

    def test_append_only_members(self, stream_publisher):
        import zipfile

        with zipfile.ZipFile(stream_publisher.archive_path) as archive:
            names = archive.namelist()
        # No duplicate members, one manifest per epoch count 0..5.
        assert len(names) == len(set(names))
        manifests = sorted(n for n in names if n.startswith("stream_manifest_"))
        assert manifests == [f"stream_manifest_{t}.npy" for t in range(6)]

    def test_duplicate_node_append_rejected(self, stream_publisher):
        from repro.io import append_stream_nodes

        release = stream_publisher.release()
        with pytest.raises(ReproError, match="append-only"):
            append_stream_nodes(
                stream_publisher.archive_path,
                {(0, 0): release.node_result(0, 0).release},
                {"epochs": 6, "nodes": []},
            )

    def test_missing_node_member_rejected(self, stream_publisher, tmp_path):
        import zipfile

        clipped = tmp_path / "clipped.npz"
        with zipfile.ZipFile(stream_publisher.archive_path) as src, zipfile.ZipFile(
            clipped, "w"
        ) as dst:
            for name in src.namelist():
                if name != "node_2_0.npy":
                    dst.writestr(name, src.read(name))
        with pytest.raises(ReproError, match="missing members"):
            load_result(clipped)

    def test_corrupt_manifest_rejected(self, stream_publisher, tmp_path):
        import zipfile

        broken = tmp_path / "broken.npz"
        with zipfile.ZipFile(stream_publisher.archive_path) as src, zipfile.ZipFile(
            broken, "w"
        ) as dst:
            for name in src.namelist():
                if not name.startswith("stream_manifest_"):
                    dst.writestr(name, src.read(name))
        with pytest.raises(ReproError, match="no manifest"):
            load_result(broken)

    def test_stale_tracks_appends(self, stream_publisher):
        from repro.data.census import generate_census_table
        from repro.streaming import StreamingPublisher

        handle = open_result(stream_publisher.archive_path)
        assert handle.stale is False
        resumed = StreamingPublisher.open(stream_publisher.archive_path)
        resumed.advance_epoch()
        assert handle.stale is True
        fresh = open_result(stream_publisher.archive_path)
        assert fresh.stale is False
        assert fresh.load().release.epochs == 6

    def test_zero_epoch_archive_loads(self, tmp_path):
        from repro.io import create_stream_archive

        path = tmp_path / "empty.npz"
        create_stream_archive(
            path,
            census_schema(BRAZIL.scaled(0.05)),
            epsilon=1.0,
            mechanism={"kind": "privelet+", "sa": ["Age", "Gender"]},
        )
        loaded = load_result(path)
        assert loaded.release.epochs == 0
        assert loaded.noise_magnitude == 0.0
        with pytest.raises(ReproError, match="already exists"):
            create_stream_archive(
                path, census_schema(BRAZIL.scaled(0.05)), epsilon=1.0
            )
