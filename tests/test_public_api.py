"""The public API surface: everything in ``repro.__all__`` importable and
documented."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_callables_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(repro.BRAZIL)):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_quickstart_docstring_flow(self):
        """The module docstring's quick-start actually runs."""
        from repro import (
            BRAZIL,
            PriveletPlusMechanism,
            RangeSumOracle,
            generate_census_table,
            generate_workload,
        )

        table = generate_census_table(BRAZIL.scaled(0.05), 2_000, seed=0)
        result = PriveletPlusMechanism(sa_names=("Age", "Gender")).publish(
            table, epsilon=1.0, seed=1
        )
        queries = generate_workload(table.schema, 20, seed=2)
        noisy = RangeSumOracle(result.matrix).answer_all(queries)
        assert noisy.shape == (20,)

    def test_error_hierarchy(self):
        assert issubclass(repro.SchemaError, repro.ReproError)
        assert issubclass(repro.HierarchyError, repro.SchemaError)
        assert issubclass(repro.TransformError, repro.ReproError)
        assert issubclass(repro.QueryError, repro.ReproError)
        assert issubclass(repro.PrivacyError, repro.ReproError)
