"""Unit tests for the closed-form variance bounds."""

import pytest

from repro.analysis.variance import (
    basic_bound,
    crossover_coverage,
    haar_bound,
    nominal_bound,
    privelet_plus_bound,
)
from repro.data.census import BRAZIL, census_schema


class TestBounds:
    def test_basic(self):
        assert basic_bound(1000, 1.0) == 8000.0
        assert basic_bound(1000, 2.0) == 2000.0

    def test_haar_equation4_paper_number(self):
        """§V-D: m = 512 -> (2+9)(2+18)^2 = 4400."""
        assert haar_bound(512, 1.0) == pytest.approx(4400.0)

    def test_haar_pads(self):
        assert haar_bound(500, 1.0) == haar_bound(512, 1.0)

    def test_nominal_equation6_paper_number(self):
        """§V-D: h = 3 -> 4 * 2 * 36 = 288."""
        assert nominal_bound(3, 1.0) == pytest.approx(288.0)

    def test_haar_small_domain_paper_number(self):
        """§VI-D: |A| = 16 -> 600."""
        assert haar_bound(16, 1.0) == pytest.approx(600.0)

    def test_epsilon_scaling(self):
        assert haar_bound(16, 2.0) == pytest.approx(150.0)
        assert nominal_bound(3, 0.5) == pytest.approx(288.0 * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            basic_bound(0, 1.0)
        with pytest.raises(ValueError):
            haar_bound(16, 0.0)
        with pytest.raises(ValueError):
            nominal_bound(0, 1.0)


class TestPriveletPlusBound:
    def test_matches_mechanism(self, mixed_schema):
        from repro.core.privelet_plus import PriveletPlusMechanism

        for sa in [(), ("X",), ("X", "G"), ("X", "G", "Y")]:
            bound = privelet_plus_bound(mixed_schema, sa, 1.0)
            mechanism_bound = PriveletPlusMechanism(sa_names=sa).variance_bound(
                mixed_schema, 1.0
            )
            assert bound == pytest.approx(mechanism_bound)

    def test_sa_validated(self, mixed_schema):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            privelet_plus_bound(mixed_schema, ("Nope",), 1.0)


class TestCrossover:
    def test_census_crossover_near_one_percent(self):
        """§VII-A reports Privelet+ winning above ~1% coverage.

        The bound-based crossover is conservative (both sides are
        worst-case bounds), landing at ~5% for the full Brazil schema; the
        measured crossover in the benchmarks is nearer the paper's 1%.
        """
        schema = census_schema(BRAZIL)
        crossover = crossover_coverage(schema, ("Age", "Gender"))
        assert 1e-4 < crossover < 1e-1

    def test_epsilon_cancels(self, mixed_schema):
        assert crossover_coverage(mixed_schema, ("X",), 0.5) == pytest.approx(
            crossover_coverage(mixed_schema, ("X",), 2.0)
        )
