"""Tests for exact per-query variance and workload-aware SA selection."""

import numpy as np
import pytest

from repro.analysis.exact import (
    axis_variance_profile,
    optimize_sa,
    query_noise_variance,
    workload_average_variance,
)
from repro.core.laplace import laplace_noise
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import two_level_hierarchy
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.queries.oracle import RangeSumOracle
from repro.queries.predicate import interval_predicate
from repro.queries.query import RangeCountQuery
from repro.queries.workload import generate_workload
from repro.transforms.multidim import HNTransform, weight_tensor


def monte_carlo_variance(hn, box, magnitude, reps=4000, seed=0):
    """Reference: push Laplace noise through the real pipeline."""
    magnitudes = magnitude / weight_tensor(hn.weight_vectors())
    rng = np.random.default_rng(seed)
    slices = tuple(slice(lo, hi) for lo, hi in box)
    answers = np.empty(reps)
    for i in range(reps):
        noise = laplace_noise(magnitudes, seed=rng)
        reconstructed = hn.inverse(noise, refine=True)
        answers[i] = reconstructed[slices].sum()
    return float(np.var(answers))


class TestExactVariance:
    @pytest.mark.parametrize("sa", [(), ("A",)])
    def test_matches_monte_carlo_1d(self, sa):
        schema = Schema([OrdinalAttribute("A", 8)])
        hn = HNTransform(schema, sa_names=sa)
        query = RangeCountQuery(schema, (interval_predicate(schema["A"], 2, 6),))
        magnitude = 3.0
        exact = query_noise_variance(hn, query, magnitude)
        simulated = monte_carlo_variance(hn, query.box(), magnitude)
        assert simulated == pytest.approx(exact, rel=0.1)

    def test_matches_monte_carlo_nominal(self):
        schema = Schema([NominalAttribute("B", two_level_hierarchy([3, 3]))])
        hn = HNTransform(schema)
        # Subtree of the first group: leaves [0, 3).
        from repro.queries.predicate import hierarchy_predicate

        query = RangeCountQuery(schema, (hierarchy_predicate(schema["B"], 1),))
        magnitude = 2.0
        exact = query_noise_variance(hn, query, magnitude)
        simulated = monte_carlo_variance(hn, query.box(), magnitude)
        assert simulated == pytest.approx(exact, rel=0.1)

    def test_matches_monte_carlo_2d_mixed(self):
        schema = Schema(
            [
                OrdinalAttribute("A", 4),
                NominalAttribute("B", two_level_hierarchy([2, 3])),
            ]
        )
        hn = HNTransform(schema)
        query = RangeCountQuery(schema, (interval_predicate(schema["A"], 1, 2),))
        magnitude = 1.5
        exact = query_noise_variance(hn, query, magnitude)
        simulated = monte_carlo_variance(hn, query.box(), magnitude)
        assert simulated == pytest.approx(exact, rel=0.1)

    def test_within_theorem3_bound(self, mixed_schema):
        """Exact variance never exceeds the Theorem 3 / Corollary 1 bound."""
        hn = HNTransform(mixed_schema, sa_names=("X",))
        magnitude = 2.0 * hn.generalized_sensitivity() / 1.0
        bound = 2.0 * magnitude**2 * hn.variance_bound_factor()
        for query in generate_workload(mixed_schema, 100, seed=5):
            assert query_noise_variance(hn, query, magnitude) <= bound * (1 + 1e-9)

    def test_identity_axis_variance_is_range_width(self):
        """On an SA axis, g is the indicator itself and W = 1: the profile
        is exactly the number of covered cells."""
        schema = Schema([OrdinalAttribute("A", 10)])
        hn = HNTransform(schema, sa_names=("A",))
        assert axis_variance_profile(hn.transforms[0], 2, 9) == pytest.approx(7.0)

    def test_basic_full_query_equals_8m(self):
        """Basic (all SA) on a full-domain query: Var = m * 2 lambda^2."""
        schema = Schema([OrdinalAttribute("A", 16)])
        hn = HNTransform(schema, sa_names=("A",))
        query = RangeCountQuery(schema)
        assert query_noise_variance(hn, query, 2.0) == pytest.approx(16 * 8.0)

    def test_bounds_validated(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        with pytest.raises(QueryError):
            axis_variance_profile(hn.transforms[0], 0, 99)
        with pytest.raises(ValueError):
            query_noise_variance(hn, RangeCountQuery(mixed_schema), 0.0)


class TestWorkloadAverage:
    def test_average_of_exact_values(self, mixed_schema):
        queries = generate_workload(mixed_schema, 40, seed=7)
        hn = HNTransform(mixed_schema, sa_names=())
        magnitude = 2.0 * hn.generalized_sensitivity() / 1.0
        expected = np.mean(
            [query_noise_variance(hn, q, magnitude) for q in queries]
        )
        assert workload_average_variance(
            mixed_schema, (), queries, 1.0
        ) == pytest.approx(float(expected))

    def test_empty_workload_rejected(self, mixed_schema):
        with pytest.raises(QueryError):
            workload_average_variance(mixed_schema, (), [], 1.0)


class TestExpectedRelativeError:
    def test_prediction_matches_measurement(self, mixed_table):
        """The Gaussian-approximation prediction tracks the measured mean
        relative error over repeated publishes."""
        from repro.analysis.exact import expected_relative_errors
        from repro.core.privelet_plus import PriveletPlusMechanism
        from repro.queries.error import relative_error
        from repro.queries.workload import Workload

        schema = mixed_table.schema
        matrix = mixed_table.frequency_matrix()
        queries = generate_workload(schema, 40, seed=21)
        workload = Workload.evaluate(queries, matrix)
        sanity = max(1.0, 0.05 * mixed_table.num_rows)
        epsilon = 1.0

        predicted = expected_relative_errors(schema, (), workload, epsilon, sanity)

        mechanism = PriveletPlusMechanism(sa_names=())
        measured = np.zeros(len(queries))
        reps = 150
        for seed in range(reps):
            result = mechanism.publish_matrix(matrix, epsilon, seed=seed)
            answers = RangeSumOracle(result.matrix).answer_all(queries)
            measured += relative_error(answers, workload.exact_answers, sanity)
        measured /= reps

        # Per-workload mean within 20%; the Gaussian approximation is
        # loose for single-coefficient-dominated queries.
        assert measured.mean() == pytest.approx(predicted.mean(), rel=0.2)

    def test_validation(self, mixed_table):
        from repro.analysis.exact import expected_relative_errors
        from repro.queries.workload import Workload

        matrix = mixed_table.frequency_matrix()
        workload = Workload.evaluate(
            generate_workload(mixed_table.schema, 5, seed=22), matrix
        )
        with pytest.raises(ValueError):
            expected_relative_errors(mixed_table.schema, (), workload, 0.0, 1.0)
        with pytest.raises(ValueError):
            expected_relative_errors(mixed_table.schema, (), workload, 1.0, 0.0)


class TestOptimizeSa:
    def test_ranking_covers_all_subsets(self, mixed_schema):
        queries = generate_workload(mixed_schema, 30, seed=9)
        choice = optimize_sa(mixed_schema, queries, epsilon=1.0)
        assert len(choice.ranking) == 2 ** mixed_schema.dimensions
        assert choice.ranking[0][0] == choice.sa
        values = [v for _, v in choice.ranking]
        assert values == sorted(values)

    def test_chosen_sa_beats_rule_on_its_workload(self, mixed_schema):
        """The workload-aware choice is at least as good (on the workload)
        as the paper's worst-case rule."""
        from repro.core.privelet_plus import select_sa

        queries = generate_workload(mixed_schema, 50, seed=11)
        choice = optimize_sa(mixed_schema, queries, epsilon=1.0)
        rule = workload_average_variance(
            mixed_schema, select_sa(mixed_schema), queries, 1.0
        )
        assert choice.average_variance <= rule + 1e-9

    def test_point_query_workload_prefers_direct_release(self):
        """A workload of point queries should push attributes into SA
        (constant per-cell noise beats log-deep wavelet paths)."""
        schema = Schema([OrdinalAttribute("A", 16)])
        queries = [
            RangeCountQuery(schema, (interval_predicate(schema["A"], i, i),))
            for i in range(16)
        ]
        choice = optimize_sa(schema, queries, epsilon=1.0)
        assert choice.sa == ("A",)

    def test_full_range_workload_prefers_wavelet(self):
        """A workload of full-domain sums should leave attributes out of
        SA (the base coefficient answers them with tiny noise)."""
        schema = Schema([OrdinalAttribute("A", 64)])
        queries = [RangeCountQuery(schema)] * 4
        choice = optimize_sa(schema, queries, epsilon=1.0)
        assert choice.sa == ()
