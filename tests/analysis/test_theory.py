"""Unit tests for the §V-D and §VI-D worked comparisons."""

import pytest

from repro.analysis.theory import nominal_vs_haar, privelet_vs_basic_small_domain


class TestSection5D:
    def test_occupation_numbers(self):
        """The paper's Occupation example: 4400 vs 288, ~15x improvement."""
        comparison = nominal_vs_haar(512, 3, epsilon=1.0)
        assert comparison.haar_variance_bound == pytest.approx(4400.0)
        assert comparison.nominal_variance_bound == pytest.approx(288.0)
        assert comparison.improvement_factor == pytest.approx(4400 / 288)
        assert comparison.improvement_factor > 15.0

    def test_nominal_always_wins_for_shallow_hierarchies(self):
        """h <= log2 m implies the nominal bound is asymptotically better;
        check it concretely across sizes for 3-level hierarchies."""
        for size in (64, 256, 1024, 4096):
            comparison = nominal_vs_haar(size, 3)
            assert comparison.nominal_variance_bound < comparison.haar_variance_bound


class TestSection6D:
    def test_small_domain_numbers(self):
        """|A| = 16: Privelet 600 vs Basic 128 — Basic wins."""
        comparison = privelet_vs_basic_small_domain(16, epsilon=1.0)
        assert comparison.privelet_variance_bound == pytest.approx(600.0)
        assert comparison.basic_variance_bound == pytest.approx(128.0)
        assert comparison.basic_wins

    def test_large_domain_flips(self):
        comparison = privelet_vs_basic_small_domain(4096)
        assert not comparison.basic_wins

    def test_crossover_domain_size(self):
        """Find where the two bounds cross; should be a few hundred."""
        sizes = [2**k for k in range(2, 14)]
        flips = [privelet_vs_basic_small_domain(s).basic_wins for s in sizes]
        assert flips[0] is True
        assert flips[-1] is False
