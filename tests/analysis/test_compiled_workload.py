"""Tests for the compiled-workload batch variance path."""

import math

import numpy as np
import pytest

from repro.analysis.exact import (
    AxisProfileCache,
    CompiledWorkload,
    expected_relative_errors,
    query_noise_variance,
    workload_average_variance,
)
from repro.errors import QueryError
from repro.queries.workload import Workload, generate_workload
from repro.transforms.multidim import HNTransform


class TestCompiledWorkload:
    def test_variances_match_per_query_oracle(self, mixed_schema):
        """CompiledWorkload.variances == query_noise_variance per query,
        for plain Privelet and for an SA split."""
        queries = generate_workload(mixed_schema, 60, seed=3)
        compiled = CompiledWorkload(mixed_schema, queries)
        for sa in [(), ("X",), ("X", "G", "Y")]:
            hn = HNTransform(mixed_schema, sa_names=sa)
            magnitude = 2.0 * hn.generalized_sensitivity() / 1.0
            expected = [query_noise_variance(hn, q, magnitude) for q in queries]
            np.testing.assert_allclose(
                compiled.variances(hn, magnitude), expected, rtol=1e-12
            )

    def test_average_matches_module_function(self, mixed_schema):
        queries = generate_workload(mixed_schema, 25, seed=4)
        compiled = CompiledWorkload(mixed_schema, queries)
        hn = HNTransform(mixed_schema, sa_names=("G",))
        magnitude = 2.0 * hn.generalized_sensitivity() / 0.5
        assert compiled.average_variance(hn, magnitude) == pytest.approx(
            workload_average_variance(mixed_schema, ("G",), queries, 0.5)
        )

    def test_expected_relative_errors_match(self, mixed_table):
        schema = mixed_table.schema
        matrix = mixed_table.frequency_matrix()
        workload = Workload.evaluate(generate_workload(schema, 30, seed=5), matrix)
        sanity = 5.0
        epsilon = 1.0
        predictions = expected_relative_errors(schema, (), workload, epsilon, sanity)
        hn = HNTransform(schema, ())
        magnitude = 2.0 * hn.generalized_sensitivity() / epsilon
        for index, query in enumerate(workload.queries):
            std = math.sqrt(query_noise_variance(hn, query, magnitude))
            expected = (
                std
                * math.sqrt(2.0 / math.pi)
                / max(float(workload.exact_answers[index]), sanity)
            )
            assert predictions[index] == pytest.approx(expected)

    def test_deduplicates_ranges_per_axis(self, mixed_schema):
        queries = generate_workload(mixed_schema, 200, seed=6)
        compiled = CompiledWorkload(mixed_schema, queries)
        assert len(compiled) == 200
        # Unconstrained axes collapse to one full range per query, so
        # dedup must find far fewer distinct ranges than queries.
        for count in compiled.unique_range_counts:
            assert 1 <= count < 200

    def test_reused_across_sa_candidates(self, mixed_schema):
        """One compiled workload serves every SA choice and each axis is
        profiled at most twice (wavelet + identity)."""
        queries = generate_workload(mixed_schema, 20, seed=7)
        compiled = CompiledWorkload(mixed_schema, queries)
        for sa in [(), ("X",), ("G", "Y"), ("X", "G", "Y")]:
            direct = workload_average_variance(mixed_schema, sa, queries, 1.0)
            shared = workload_average_variance(
                mixed_schema, sa, queries, 1.0, compiled=compiled
            )
            assert shared == pytest.approx(direct)
        assert len(compiled._profile_cache) <= 2 * mixed_schema.dimensions

    def test_same_shape_different_schema_rejected(self):
        """A same-shape schema with a different hierarchy must not be
        served another schema's cached profiles."""
        from repro.data.attributes import NominalAttribute
        from repro.data.hierarchy import balanced_hierarchy, flat_hierarchy
        from repro.data.schema import Schema

        deep = Schema([NominalAttribute("N", balanced_hierarchy(8, 2))])
        flat = Schema([NominalAttribute("N", flat_hierarchy(8))])
        queries = generate_workload(deep, 10, seed=9)
        compiled = CompiledWorkload(deep, queries)
        compiled.profile_products(HNTransform(deep))
        with pytest.raises(QueryError):
            compiled.profile_products(HNTransform(flat))

    def test_empty_workload_rejected(self, mixed_schema):
        with pytest.raises(QueryError):
            CompiledWorkload(mixed_schema, [])

    def test_schema_mismatch_rejected(self, mixed_schema):
        from repro.data.attributes import OrdinalAttribute
        from repro.data.schema import Schema

        other = Schema([OrdinalAttribute("Z", 4)])
        queries = generate_workload(other, 3, seed=8)
        with pytest.raises(QueryError):
            CompiledWorkload(mixed_schema, queries)
        compiled = CompiledWorkload(other, queries)
        with pytest.raises(QueryError):
            compiled.profile_products(HNTransform(mixed_schema))


class TestAxisProfileCache:
    def test_memoizes_and_matches_scalar_path(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        cache = AxisProfileCache(hn.transforms)
        lows = np.array([0, 1, 0, 1])
        highs = np.array([5, 3, 5, 3])
        first = cache.profiles(0, lows, highs)
        for value, (lo, hi) in zip(first, zip(lows, highs)):
            assert value == pytest.approx(cache.profile(0, lo, hi))
        # Second call is served from the memo (same values, no new keys).
        keys_before = dict(cache._caches[0])
        np.testing.assert_allclose(cache.profiles(0, lows, highs), first)
        assert cache._caches[0] == keys_before

    def test_bounds_rejected(self, mixed_schema):
        hn = HNTransform(mixed_schema)
        cache = AxisProfileCache(hn.transforms)
        with pytest.raises(QueryError):
            cache.profiles(0, [0], [99])
        with pytest.raises(QueryError):
            cache.profile(0, -1, 3)
