"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import Hierarchy, Node, balanced_hierarchy, two_level_hierarchy
from repro.data.schema import Schema
from repro.data.table import Table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def figure3_hierarchy() -> Hierarchy:
    """The paper's Figure 3 hierarchy: root over two 3-leaf groups."""
    root = Node("Any")
    left = root.add("L")
    right = root.add("R")
    for label in ("v1", "v2", "v3"):
        left.add(label)
    for label in ("v4", "v5", "v6"):
        right.add(label)
    return Hierarchy(root)


@pytest.fixture
def figure3_vector() -> np.ndarray:
    """The Figure 3 frequency vector [9, 3, 6, 2, 8, 2]."""
    return np.array([9.0, 3.0, 6.0, 2.0, 8.0, 2.0])


@pytest.fixture
def unbalanced_hierarchy() -> Hierarchy:
    """A hierarchy with leaves at different depths and mixed fanouts."""
    root = Node("Any")
    a = root.add("A")
    b = root.add("B")
    c = root.add("C")
    a.add("a1")
    a.add("a2")
    b1 = b.add("b1")
    b.add("b2")
    b1.add("b1x")
    b1.add("b1y")
    b1.add("b1z")
    c.add("c1")
    c.add("c2")
    c.add("c3")
    c.add("c4")
    return Hierarchy(root)


@pytest.fixture
def mixed_schema() -> Schema:
    """Small 3-attribute schema: ordinal(5), nominal(6, h=3), ordinal(4)."""
    return Schema(
        [
            OrdinalAttribute("X", 5),
            NominalAttribute("G", two_level_hierarchy([3, 3])),
            OrdinalAttribute("Y", 4),
        ]
    )


@pytest.fixture
def mixed_table(mixed_schema, rng) -> Table:
    rows = np.stack(
        [
            rng.integers(0, attr.size, size=300)
            for attr in mixed_schema
        ],
        axis=1,
    )
    return Table(mixed_schema, rows)


@pytest.fixture
def binary_hierarchy_8() -> Hierarchy:
    """Balanced binary hierarchy over 8 leaves (height 4)."""
    return balanced_hierarchy(8, 2)
